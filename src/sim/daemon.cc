#include "sim/daemon.hh"

#include "common/logging.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {

DaemonCoRunner::DaemonCoRunner(EventQueue &queue, Cluster &cluster,
                               Config config, Rng rng)
    : _queue(queue), _cluster(cluster), _config(std::move(config)),
      _rng(rng)
{
    DEJAVU_ASSERT(!_config.scanTheft.empty(),
                  "daemon co-runner needs at least one theft tier");
    for (double theft : _config.scanTheft)
        DEJAVU_ASSERT(theft >= 0.0 && theft <= 0.95,
                      "daemon theft tier out of range: ", theft);
    DEJAVU_ASSERT(_config.period > 0, "daemon period must be positive");
    DEJAVU_ASSERT(_config.dutyCycle > 0.0 && _config.dutyCycle <= 1.0,
                  "daemon duty cycle out of range: ",
                  _config.dutyCycle);
}

void
DaemonCoRunner::start()
{
    if (!_config.enabled || _active)
        return;
    _active = true;
    // The first scan fires at a seeded phase offset within one
    // period: host daemons are not cron-aligned with the trace hour,
    // but the offset is deterministic per seed.
    const SimTime offset = static_cast<SimTime>(
        _rng.uniform() * static_cast<double>(_config.period));
    _queue.scheduleAfter(offset, [this] {
        if (_active)
            beginScan();
    });
}

void
DaemonCoRunner::stop()
{
    _active = false;
    for (int i = 0; i < _cluster.poolSize(); ++i)
        _cluster.vm(i).setDaemonTheft(0.0);
}

void
DaemonCoRunner::beginScan()
{
    // Successive scans cycle through the pressure tiers round-robin:
    // deterministic, unlike the injector's per-VM random pick.
    const double theft = _config.scanTheft[_nextTier];
    _nextTier = (_nextTier + 1) % _config.scanTheft.size();
    for (int i = 0; i < _cluster.poolSize(); ++i)
        _cluster.vm(i).setDaemonTheft(theft);

    const SimTime window = static_cast<SimTime>(
        _config.dutyCycle * static_cast<double>(_config.period));
    _queue.scheduleAfter(window, [this] {
        if (_active)
            endScan();
    });
}

void
DaemonCoRunner::endScan()
{
    for (int i = 0; i < _cluster.poolSize(); ++i)
        _cluster.vm(i).setDaemonTheft(0.0);
    ++_scans;

    const SimTime window = static_cast<SimTime>(
        _config.dutyCycle * static_cast<double>(_config.period));
    _queue.scheduleAfter(_config.period - window, [this] {
        if (_active)
            beginScan();
    });
}

} // namespace dejavu
