/**
 * @file
 * Background-daemon co-runners: periodic dedup/scan-style CPU+memory
 * thieves, the interference shape of the BASK study (a KSM-like
 * dedup daemon stealing capacity from a latency-sensitive service).
 *
 * This is a *distinct* mechanism from the workload-phase
 * InterferenceInjector (§4.3's co-located tenant microbenchmark):
 * the injector reassigns a persistent occupancy pseudo-randomly per
 * period, while a daemon is a deterministic duty cycle — a scan
 * window at the start of every period during which the daemon steals
 * a configured fraction of CPU+memory, then goes idle until the next
 * period. The two compose multiplicatively on the Vm (see
 * Vm::setDaemonTheft); stopping the injector does not silence the
 * daemon, because daemons are host software, not a workload phase.
 */

#ifndef DEJAVU_SIM_DAEMON_HH
#define DEJAVU_SIM_DAEMON_HH

#include <vector>

#include "common/random.hh"
#include "common/sim_time.hh"

namespace dejavu {

class Cluster;
class EventQueue;

/**
 * Deterministic periodic scan daemon across a cluster's VMs.
 */
class DaemonCoRunner
{
  public:
    struct Config
    {
        /** Theft fractions the scan cycles through round-robin, one
         *  per scan window — successive scans alternate pressure
         *  tiers (a light incremental pass, a heavy full pass), which
         *  is what spreads the §3.6 interference index across
         *  multiple buckets. */
        std::vector<double> scanTheft = {0.15, 0.45};
        /** One scan cycle: window + idle remainder. */
        SimTime period = hours(1);
        /** Active fraction of each period spent scanning, in (0, 1]. */
        double dutyCycle = 0.25;
        /** When false the daemon never touches any VM. */
        bool enabled = true;
    };

    /** @p rng seeds the deterministic phase offset of the first scan
     *  (daemons do not start cron-aligned with the trace hour). */
    DaemonCoRunner(EventQueue &queue, Cluster &cluster, Config config,
                   Rng rng);

    /** Begin the periodic scan schedule. */
    void start();

    /** Stop scanning and clear all daemon theft. */
    void stop();

    bool enabled() const { return _config.enabled; }

    /** Completed scan windows (diagnostics). */
    std::uint64_t scansCompleted() const { return _scans; }

  private:
    EventQueue &_queue;
    Cluster &_cluster;
    Config _config;
    Rng _rng;
    bool _active = false;
    std::size_t _nextTier = 0;
    std::uint64_t _scans = 0;

    void beginScan();
    void endScan();
};

} // namespace dejavu

#endif // DEJAVU_SIM_DAEMON_HH
