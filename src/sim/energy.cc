#include "sim/energy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dejavu {

EnergyModel::EnergyModel()
    : EnergyModel(Config())
{
}

EnergyModel::EnergyModel(Config config)
    : _config(config)
{
    DEJAVU_ASSERT(_config.idleWattsPerInstance >= 0.0, "bad idle W");
    DEJAVU_ASSERT(_config.dynamicWattsPerInstance >= 0.0, "bad dyn W");
    DEJAVU_ASSERT(_config.referenceEcu > 0.0, "bad reference ECU");
}

double
EnergyModel::watts(const ResourceAllocation &allocation,
                   double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    // Scale by capacity: an XL instance is two large-equivalents.
    const double largeEquivalents =
        allocation.computeUnits() / _config.referenceEcu;
    return largeEquivalents
        * (_config.idleWattsPerInstance
           + u * _config.dynamicWattsPerInstance);
}

double
EnergyModel::clusterWatts(const Cluster &cluster,
                          double utilization) const
{
    return watts(cluster.target(), utilization);
}

void
EnergyMeter::update(SimTime now, double watts)
{
    DEJAVU_ASSERT(watts >= 0.0, "negative power draw");
    _watts.set(now, watts);
}

double
EnergyMeter::kiloWattHours(SimTime now) const
{
    // integralSeconds yields watt-seconds (joules); 3.6e6 J per kWh.
    return _watts.integralSeconds(now) / 3.6e6;
}

} // namespace dejavu
