/**
 * @file
 * Energy accounting. The paper's introduction argues DejaVu "would
 * also enable providers to lower their energy costs (e.g., by
 * consolidating workloads on fewer machines, more machines can enter
 * a low-power state)". We quantify that: a simple linear server power
 * model (idle floor + utilization-proportional dynamic power, the
 * standard datacenter approximation) integrated over the run. VMs
 * that are stopped free their share of a physical machine, which can
 * then power down.
 */

#ifndef DEJAVU_SIM_ENERGY_HH
#define DEJAVU_SIM_ENERGY_HH

#include "common/sim_time.hh"
#include "common/stats.hh"
#include "sim/cluster.hh"

namespace dejavu {

/**
 * Linear server power model, per large-instance-equivalent.
 */
class EnergyModel
{
  public:
    struct Config
    {
        /** Idle power of the PM share backing one large instance. */
        double idleWattsPerInstance = 120.0;
        /** Additional power at 100% utilization. */
        double dynamicWattsPerInstance = 110.0;
        /** ECU of the reference (large) instance. */
        double referenceEcu = 4.0;
    };

    EnergyModel();
    explicit EnergyModel(Config config);

    /**
     * Instantaneous power draw (watts) of an allocation running at
     * the given utilization. Stopped instances draw nothing (their
     * PM share can sleep — the consolidation benefit).
     */
    double watts(const ResourceAllocation &allocation,
                 double utilization) const;

    /** Convenience: power draw of a cluster's current target. */
    double clusterWatts(const Cluster &cluster,
                        double utilization) const;

    const Config &config() const { return _config; }

  private:
    Config _config;
};

/**
 * Integrates watts over simulated time into kWh.
 */
class EnergyMeter
{
  public:
    /** Record that the draw changed to @p watts at time @p now. */
    void update(SimTime now, double watts);

    /** Energy consumed from the first update until @p now, in kWh. */
    double kiloWattHours(SimTime now) const;

    double currentWatts() const { return _watts.current(); }

  private:
    TimeWeightedValue _watts;
};

} // namespace dejavu

#endif // DEJAVU_SIM_ENERGY_HH
