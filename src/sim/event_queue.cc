#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace dejavu {

EventId
EventQueue::schedule(SimTime at, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(at >= _now, "cannot schedule in the past: at=", at,
                  " now=", _now);
    const EventId id = _nextId++;
    if (_callbacks.size() <= id)
        _callbacks.resize(id + 1);
    _callbacks[id] = std::move(fn);
    _heap.push(Entry{at, _nextSeq++, id, band});
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(delay >= 0, "negative delay");
    return schedule(saturatingAdd(_now, delay), std::move(fn), band);
}

EventId
EventQueue::schedulePeriodic(SimTime first, SimTime period, Callback fn,
                             EventBand band)
{
    DEJAVU_ASSERT(period > 0, "periodic event needs a positive period");
    DEJAVU_ASSERT(first >= _now, "cannot schedule in the past: at=",
                  first, " now=", _now);
    const EventId id = _nextId++;
    _periodic.emplace(id, Periodic{period, band, true, std::move(fn)});
    _heap.push(Entry{first, _nextSeq++, id, band});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEvent || id >= _nextId)
        return false;
    if (auto it = _periodic.find(id); it != _periodic.end()) {
        if (it->second.armed)
            _cancelled.insert(id);  // skip the armed occurrence
        _periodic.erase(it);
        return true;
    }
    if (id < _callbacks.size() && _callbacks[id]) {
        _callbacks[id] = nullptr;
        _cancelled.insert(id);
        return true;
    }
    return false;
}

bool
EventQueue::popLive(Entry &out)
{
    while (!_heap.empty()) {
        Entry e = _heap.top();
        _heap.pop();
        auto it = _cancelled.find(e.id);
        if (it != _cancelled.end()) {
            _cancelled.erase(it);
            continue;
        }
        out = e;
        return true;
    }
    return false;
}

void
EventQueue::fire(const Entry &e)
{
    if (auto it = _periodic.find(e.id); it != _periodic.end()) {
        // Invoke a copy: the callback may cancel its own series,
        // erasing the stored closure out from under itself.
        it->second.armed = false;
        Callback fn = it->second.fn;
        fn();
        it = _periodic.find(e.id);
        if (it != _periodic.end()) {
            const SimTime next = saturatingAdd(_now, it->second.period);
            if (next > _now) {
                it->second.armed = true;
                _heap.push(Entry{next, _nextSeq++, e.id,
                                 it->second.band});
            } else {
                // Saturated at the end of simulated time: re-arming
                // at the same instant would spin runUntil(kSimTimeMax)
                // forever, so the series ends here.
                _periodic.erase(it);
            }
        }
        return;
    }
    Callback fn = std::move(_callbacks[e.id]);
    _callbacks[e.id] = nullptr;
    fn();
}

std::size_t
EventQueue::runUntil(SimTime limit)
{
    std::size_t executed = 0;
    Entry e;
    while (!_heap.empty()) {
        // Peek: find the next live entry without losing it.
        if (!popLive(e))
            break;
        if (e.at > limit) {
            // Push back and stop; limit reached.
            _heap.push(e);
            break;
        }
        _now = e.at;
        fire(e);
        ++executed;
    }
    if (_now < limit)
        _now = limit;
    return executed;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t executed = 0;
    Entry e;
    while (executed < maxEvents && popLive(e)) {
        _now = e.at;
        fire(e);
        ++executed;
    }
    DEJAVU_ASSERT(executed < maxEvents,
                  "event budget exhausted; runaway self-scheduling?");
    return executed;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    _now = e.at;
    fire(e);
    return true;
}

} // namespace dejavu
