#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace dejavu {

EventId
EventQueue::schedule(SimTime at, Callback fn)
{
    DEJAVU_ASSERT(at >= _now, "cannot schedule in the past: at=", at,
                  " now=", _now);
    const EventId id = _nextId++;
    if (_callbacks.size() <= id)
        _callbacks.resize(id + 1);
    _callbacks[id] = std::move(fn);
    _heap.push(Entry{at, _nextSeq++, id});
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback fn)
{
    DEJAVU_ASSERT(delay >= 0, "negative delay");
    return schedule(_now + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEvent || id >= _nextId)
        return false;
    if (id < _callbacks.size() && _callbacks[id]) {
        _callbacks[id] = nullptr;
        _cancelled.insert(id);
        return true;
    }
    return false;
}

bool
EventQueue::popLive(Entry &out)
{
    while (!_heap.empty()) {
        Entry e = _heap.top();
        _heap.pop();
        auto it = _cancelled.find(e.id);
        if (it != _cancelled.end()) {
            _cancelled.erase(it);
            continue;
        }
        out = e;
        return true;
    }
    return false;
}

std::size_t
EventQueue::runUntil(SimTime limit)
{
    std::size_t executed = 0;
    Entry e;
    while (!_heap.empty()) {
        // Peek: find the next live entry without losing it.
        if (!popLive(e))
            break;
        if (e.at > limit) {
            // Push back and stop; limit reached.
            _heap.push(e);
            break;
        }
        _now = e.at;
        Callback fn = std::move(_callbacks[e.id]);
        _callbacks[e.id] = nullptr;
        fn();
        ++executed;
    }
    if (_now < limit)
        _now = limit;
    return executed;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t executed = 0;
    Entry e;
    while (executed < maxEvents && popLive(e)) {
        _now = e.at;
        Callback fn = std::move(_callbacks[e.id]);
        _callbacks[e.id] = nullptr;
        fn();
        ++executed;
    }
    DEJAVU_ASSERT(executed < maxEvents,
                  "event budget exhausted; runaway self-scheduling?");
    return executed;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    _now = e.at;
    Callback fn = std::move(_callbacks[e.id]);
    _callbacks[e.id] = nullptr;
    fn();
    return true;
}

} // namespace dejavu
