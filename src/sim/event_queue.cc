#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace dejavu {

void
EventQueue::reserve(std::size_t slots)
{
    // +1 for the never-allocated slot 0.
    _slots.reserve(slots + 1);
    _free.reserve(slots);
    _heap.reserve(slots);
}

EventId
EventQueue::allocSlot()
{
    if (_slots.empty())
        _slots.emplace_back();  // slot 0 stays dead: kInvalidEvent.
    std::uint32_t index;
    if (!_free.empty()) {
        index = _free.back();
        _free.pop_back();
    } else {
        index = static_cast<std::uint32_t>(_slots.size());
        DEJAVU_ASSERT(_slots.size() < UINT32_MAX,
                      "event slot pool exhausted");
        _slots.emplace_back();
    }
    Slot &slot = _slots[index];
    slot.live = true;
    ++_live;
    return makeId(index, slot.gen);
}

void
EventQueue::killSlot(std::uint32_t index)
{
    Slot &slot = _slots[index];
    slot.live = false;
    slot.fn = nullptr;
    slot.period = 0;
    // Advancing the generation invalidates every outstanding handle
    // and stale heap entry before the index is handed out again.
    ++slot.gen;
    _free.push_back(index);
    --_live;
}

EventId
EventQueue::schedule(SimTime at, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(at >= _now, "cannot schedule in the past: at=", at,
                  " now=", _now);
    const EventId id = allocSlot();
    Slot &slot = _slots[slotIndex(id)];
    slot.fn = std::move(fn);
    slot.band = band;
    push(Entry{at, _nextSeq++, id, band});
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(delay >= 0, "negative delay");
    return schedule(saturatingAdd(_now, delay), std::move(fn), band);
}

EventId
EventQueue::schedulePeriodic(SimTime first, SimTime period, Callback fn,
                             EventBand band)
{
    DEJAVU_ASSERT(period > 0, "periodic event needs a positive period");
    DEJAVU_ASSERT(first >= _now, "cannot schedule in the past: at=",
                  first, " now=", _now);
    const EventId id = allocSlot();
    Slot &slot = _slots[slotIndex(id)];
    slot.fn = std::move(fn);
    slot.period = period;
    slot.band = band;
    push(Entry{first, _nextSeq++, id, band});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (!isPending(id))
        return false;
    // Any heap entry the event still owns goes stale (its generation
    // no longer matches) and is skipped on pop; a periodic cancelled
    // from inside its own callback (its entry already popped) simply
    // never re-arms.
    killSlot(slotIndex(id));
    return true;
}

bool
EventQueue::popLive(Entry &out)
{
    while (!_heap.empty()) {
        Entry e = _heap.front();
        std::pop_heap(_heap.begin(), _heap.end());
        _heap.pop_back();
        if (!isPending(e.id))
            continue;  // cancelled/recycled after arming; stale entry
        out = e;
        return true;
    }
    return false;
}

void
EventQueue::fire(const Entry &e)
{
    ++_executed;
    const std::uint32_t index = slotIndex(e.id);
    if (_slots[index].period > 0) {
        // Invoke a copy: the callback may cancel its own series
        // (releasing the stored closure, recycling the slot) or
        // schedule new events (reallocating the slot vector out from
        // under a reference).
        Callback fn = _slots[index].fn;
        fn();
        if (!isPending(e.id))
            return;  // cancelled during the callback
        Slot &slot = _slots[index];
        const SimTime next = saturatingAdd(_now, slot.period);
        if (next > _now) {
            push(Entry{next, _nextSeq++, e.id, slot.band});
        } else {
            // Saturated at the end of simulated time: re-arming at
            // the same instant would spin runUntil(kSimTimeMax)
            // forever, so the series ends here.
            killSlot(index);
        }
        return;
    }
    Callback fn = std::move(_slots[index].fn);
    killSlot(index);
    fn();
}

std::size_t
EventQueue::runUntil(SimTime limit)
{
    std::size_t executed = 0;
    Entry e;
    while (!_heap.empty()) {
        // Peek: find the next live entry without losing it.
        if (!popLive(e))
            break;
        if (e.at > limit) {
            // Push back and stop; limit reached.
            push(e);
            break;
        }
        _now = e.at;
        fire(e);
        ++executed;
    }
    if (_now < limit)
        _now = limit;
    return executed;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t executed = 0;
    Entry e;
    while (executed < maxEvents && popLive(e)) {
        _now = e.at;
        fire(e);
        ++executed;
    }
    DEJAVU_ASSERT(executed < maxEvents || empty(),
                  "event budget exhausted; runaway self-scheduling?");
    return executed;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    _now = e.at;
    fire(e);
    return true;
}

} // namespace dejavu
