#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace dejavu {

EventQueue::Slot &
EventQueue::newSlot(EventId id)
{
    if (_slots.size() <= id)
        _slots.resize(id + 1);
    Slot &slot = _slots[id];
    slot.live = true;
    ++_live;
    return slot;
}

void
EventQueue::killSlot(Slot &slot)
{
    slot.live = false;
    slot.fn = nullptr;
    --_live;
}

EventId
EventQueue::schedule(SimTime at, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(at >= _now, "cannot schedule in the past: at=", at,
                  " now=", _now);
    const EventId id = _nextId++;
    Slot &slot = newSlot(id);
    slot.fn = std::move(fn);
    slot.band = band;
    _heap.push(Entry{at, _nextSeq++, id, band});
    return id;
}

EventId
EventQueue::scheduleAfter(SimTime delay, Callback fn, EventBand band)
{
    DEJAVU_ASSERT(delay >= 0, "negative delay");
    return schedule(saturatingAdd(_now, delay), std::move(fn), band);
}

EventId
EventQueue::schedulePeriodic(SimTime first, SimTime period, Callback fn,
                             EventBand band)
{
    DEJAVU_ASSERT(period > 0, "periodic event needs a positive period");
    DEJAVU_ASSERT(first >= _now, "cannot schedule in the past: at=",
                  first, " now=", _now);
    const EventId id = _nextId++;
    Slot &slot = newSlot(id);
    slot.fn = std::move(fn);
    slot.period = period;
    slot.band = band;
    _heap.push(Entry{first, _nextSeq++, id, band});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= _slots.size() || !_slots[id].live)
        return false;
    // Any heap entry the event still owns goes stale and is skipped
    // on pop; a periodic cancelled from inside its own callback (its
    // entry already popped) simply never re-arms.
    killSlot(_slots[id]);
    return true;
}

bool
EventQueue::popLive(Entry &out)
{
    while (!_heap.empty()) {
        Entry e = _heap.top();
        _heap.pop();
        if (!_slots[e.id].live)
            continue;  // cancelled after arming; entry is stale
        out = e;
        return true;
    }
    return false;
}

void
EventQueue::fire(const Entry &e)
{
    ++_executed;
    if (_slots[e.id].period > 0) {
        // Invoke a copy: the callback may cancel its own series
        // (releasing the stored closure) or schedule new events
        // (reallocating the slot vector out from under a reference).
        Callback fn = _slots[e.id].fn;
        fn();
        Slot &slot = _slots[e.id];
        if (!slot.live)
            return;  // cancelled during the callback
        const SimTime next = saturatingAdd(_now, slot.period);
        if (next > _now) {
            _heap.push(Entry{next, _nextSeq++, e.id, slot.band});
        } else {
            // Saturated at the end of simulated time: re-arming at
            // the same instant would spin runUntil(kSimTimeMax)
            // forever, so the series ends here.
            killSlot(slot);
        }
        return;
    }
    Callback fn = std::move(_slots[e.id].fn);
    killSlot(_slots[e.id]);
    fn();
}

std::size_t
EventQueue::runUntil(SimTime limit)
{
    std::size_t executed = 0;
    Entry e;
    while (!_heap.empty()) {
        // Peek: find the next live entry without losing it.
        if (!popLive(e))
            break;
        if (e.at > limit) {
            // Push back and stop; limit reached.
            _heap.push(e);
            break;
        }
        _now = e.at;
        fire(e);
        ++executed;
    }
    if (_now < limit)
        _now = limit;
    return executed;
}

std::size_t
EventQueue::runAll(std::size_t maxEvents)
{
    std::size_t executed = 0;
    Entry e;
    while (executed < maxEvents && popLive(e)) {
        _now = e.at;
        fire(e);
        ++executed;
    }
    DEJAVU_ASSERT(executed < maxEvents || empty(),
                  "event budget exhausted; runaway self-scheduling?");
    return executed;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popLive(e))
        return false;
    _now = e.at;
    fire(e);
    return true;
}

} // namespace dejavu
