/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue in the style of gem5's EventQueue: the
 * queue owns a clock; callers schedule callbacks at absolute simulated
 * times; execution order is (time, band, insertion sequence) so runs
 * are deterministic. Events can be one-shot or recurring, and both are
 * cancellable through the same handle.
 *
 * Per-event state lives in a flat slot vector; an EventId packs the
 * slot index with a generation counter, so slots of fired/cancelled
 * events are recycled through a free list (a fleet's per-tick one-shot
 * chains would otherwise grow the vector by one dead slot per event
 * ever scheduled — gigabytes at 10k services) while stale handles stay
 * safely invalid: cancellation flips one flag (the heap entry is
 * skipped lazily on pop), liveness checks are an array load plus a
 * generation compare, and the pending count is a maintained counter.
 * At fleet scale (thousands of actors churning probes and timeouts on
 * one queue) this pop/cancel path is the simulation's hottest loop;
 * reserve() pre-sizes both the heap and the slot pool so steady state
 * never reallocates.
 */

#ifndef DEJAVU_SIM_EVENT_QUEUE_HH
#define DEJAVU_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.hh"

namespace dejavu {

/** Opaque handle used to cancel a scheduled event. Packs a slot index
 *  (low 32 bits) with a generation counter (high 32 bits) so recycled
 *  slots never resurrect a stale handle. */
using EventId = std::uint64_t;

/** Sentinel for "no event" (slot 0 is never allocated). */
constexpr EventId kInvalidEvent = 0;

/**
 * Execution band for events that land on the same instant. Within one
 * instant, all Normal events run first, then Probe events, then Driver
 * events; insertion order breaks remaining ties. The bands encode the
 * harness's intra-instant contract: reconfigurations scheduled by
 * controllers (Normal) are visible to monitoring probes (Probe), and
 * an end-of-hour probe observes the system *before* the next hour's
 * workload change (Driver) rewrites it.
 */
enum class EventBand : std::uint8_t
{
    Normal = 0,  ///< Default: model events, deployments, timeouts.
    Probe = 1,   ///< Monitoring samples; observe same-instant effects.
    Driver = 2,  ///< Workload/trace drivers; last word at an instant.
};

/**
 * Deterministic min-heap event queue with cancellation and recurring
 * events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return _now; }

    /**
     * Pre-size the kernel for a known load: capacity for @p slots
     * concurrently pending events (the slot pool and the heap). Purely
     * an optimization — the queue grows past it fine.
     */
    void reserve(std::size_t slots);

    /**
     * Schedule @p fn at absolute time @p at (>= now).
     * @return a handle that can be passed to cancel().
     */
    EventId schedule(SimTime at, Callback fn,
                     EventBand band = EventBand::Normal);

    /** Schedule @p fn @p delay after the current time. */
    EventId scheduleAfter(SimTime delay, Callback fn,
                          EventBand band = EventBand::Normal);

    /**
     * Schedule @p fn to run at @p first and then every @p period until
     * cancelled. The returned handle stays valid across repetitions;
     * cancel() (from inside the callback or outside) stops the series.
     * Note runAll() never drains a queue holding a live periodic
     * event — bound such runs with runUntil().
     */
    EventId schedulePeriodic(SimTime first, SimTime period, Callback fn,
                             EventBand band = EventBand::Normal);

    /**
     * Cancel a pending event (one-shot or periodic).
     * @return true if the event was still pending.
     */
    bool cancel(EventId id);

    /** Whether @p id refers to a not-yet-run, not-cancelled event. A
     *  live periodic series counts as pending, including while its own
     *  callback is running. Stale handles (slot since recycled) are
     *  rejected by the generation check. */
    bool isPending(EventId id) const
    {
        const std::uint32_t index = slotIndex(id);
        return index < _slots.size() && _slots[index].live
            && _slots[index].gen == generation(id);
    }

    /** Number of pending (non-cancelled) events. A live periodic
     *  series counts as one pending event at all times — also while
     *  its callback runs — so pending()/empty() always agree with
     *  isPending(). */
    std::size_t pending() const { return _live; }

    bool empty() const { return _live == 0; }

    /** Events executed over this queue's lifetime. */
    std::uint64_t executed() const { return _executed; }

    /** Slots currently allocated (live + recyclable); the pool's
     *  high-water mark of concurrently pending events. */
    std::size_t slotCapacity() const { return _slots.size(); }

    /**
     * Execute events until the queue is empty or the next event is
     * after @p limit; the clock is left at min(limit, last event time).
     * @return number of events executed.
     */
    std::size_t runUntil(SimTime limit);

    /**
     * Execute every pending event (including ones scheduled while
     * draining). @p maxEvents guards against runaway self-scheduling:
     * the budget trips only if live work remains once it is spent, so
     * a queue that drains in exactly @p maxEvents events is fine.
     * @return number of events executed.
     */
    std::size_t runAll(std::size_t maxEvents = 100000000);

    /** Execute exactly one event if one is pending. */
    bool step();

  private:
    struct Entry
    {
        SimTime at;
        std::uint64_t seq;
        EventId id;
        EventBand band;
        // Ordered as a max-heap by default; invert for min-heap.
        bool operator<(const Entry &o) const
        {
            if (at != o.at)
                return at > o.at;
            if (band != o.band)
                return band > o.band;
            return seq > o.seq;
        }
    };

    /**
     * Per-event state, indexed by the id's slot index. A cancelled or
     * fired slot goes dead (its closure is released immediately), its
     * generation advances — invalidating every outstanding handle and
     * heap entry — and the index joins the free list for reuse.
     */
    struct Slot
    {
        Callback fn;
        SimTime period = 0;  ///< > 0 for a periodic series.
        std::uint32_t gen = 0;  ///< Bumped on kill; ids must match.
        EventBand band = EventBand::Normal;
        bool live = false;   ///< Scheduled, not yet run or cancelled.
    };

    static std::uint32_t slotIndex(EventId id)
    { return static_cast<std::uint32_t>(id); }

    static std::uint32_t generation(EventId id)
    { return static_cast<std::uint32_t>(id >> 32); }

    static EventId makeId(std::uint32_t index, std::uint32_t gen)
    { return (static_cast<EventId>(gen) << 32) | index; }

    SimTime _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::vector<Entry> _heap;  ///< std::push_heap/pop_heap managed.
    std::vector<Slot> _slots;  ///< Indexed by slot index; 0 unused.
    std::vector<std::uint32_t> _free;  ///< Recyclable slot indices.
    std::size_t _live = 0;     ///< Live slots, i.e. pending().

    /** Allocate a slot (free list first) and return its id. */
    EventId allocSlot();

    /** Kill a live slot: release its closure, advance its generation
     *  (stale handles/entries go invalid), recycle the index. */
    void killSlot(std::uint32_t index);

    void push(const Entry &e)
    {
        _heap.push_back(e);
        std::push_heap(_heap.begin(), _heap.end());
    }

    /** Pop entries until a live one is found; returns false if none. */
    bool popLive(Entry &out);

    /** Run one live entry's callback; periodic entries re-arm. */
    void fire(const Entry &e);
};

} // namespace dejavu

#endif // DEJAVU_SIM_EVENT_QUEUE_HH
