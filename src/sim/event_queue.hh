/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue in the style of gem5's EventQueue: the
 * queue owns a clock; callers schedule callbacks at absolute simulated
 * times; execution order is (time, insertion sequence) so runs are
 * deterministic.
 */

#ifndef DEJAVU_SIM_EVENT_QUEUE_HH
#define DEJAVU_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hh"

namespace dejavu {

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId kInvalidEvent = 0;

/**
 * Deterministic min-heap event queue with cancellation.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return _now; }

    /**
     * Schedule @p fn at absolute time @p at (>= now).
     * @return a handle that can be passed to cancel().
     */
    EventId schedule(SimTime at, Callback fn);

    /** Schedule @p fn @p delay after the current time. */
    EventId scheduleAfter(SimTime delay, Callback fn);

    /**
     * Cancel a pending event.
     * @return true if the event was still pending.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return _heap.size() - _cancelled.size(); }

    bool empty() const { return pending() == 0; }

    /**
     * Execute events until the queue is empty or the next event is
     * after @p limit; the clock is left at min(limit, last event time).
     * @return number of events executed.
     */
    std::size_t runUntil(SimTime limit);

    /**
     * Execute every pending event (including ones scheduled while
     * draining). @p maxEvents guards against runaway self-scheduling.
     * @return number of events executed.
     */
    std::size_t runAll(std::size_t maxEvents = 100000000);

    /** Execute exactly one event if one is pending. */
    bool step();

  private:
    struct Entry
    {
        SimTime at;
        std::uint64_t seq;
        EventId id;
        // Ordered as a max-heap by default; invert for min-heap.
        bool operator<(const Entry &o) const
        {
            if (at != o.at)
                return at > o.at;
            return seq > o.seq;
        }
    };

    SimTime _now = 0;
    std::uint64_t _nextSeq = 0;
    EventId _nextId = 1;
    std::priority_queue<Entry> _heap;
    std::unordered_set<EventId> _cancelled;
    std::vector<Callback> _callbacks;  // indexed by id (grow-only)

    /** Pop entries until a live one is found; returns false if none. */
    bool popLive(Entry &out);
};

} // namespace dejavu

#endif // DEJAVU_SIM_EVENT_QUEUE_HH
