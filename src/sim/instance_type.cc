#include "sim/instance_type.hh"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/logging.hh"

namespace dejavu {

namespace {

const std::array<InstanceSpec, 3> kSpecs = {{
    // EC2 first-generation (m1) family, on-demand pricing as of
    // July 2011 (paper §4.5 quotes large and extra large).
    {InstanceType::Small, "m1.small", 1.0, 1.7, 1.0, 0.085},
    {InstanceType::Large, "m1.large", 4.0, 7.5, 2.0, 0.34},
    {InstanceType::XLarge, "m1.xlarge", 8.0, 15.0, 4.0, 0.68},
}};

} // namespace

const InstanceSpec &
instanceSpec(InstanceType type)
{
    for (const auto &spec : kSpecs)
        if (spec.type == type)
            return spec;
    DEJAVU_PANIC("unknown instance type");
}

std::string
shortName(InstanceType type)
{
    switch (type) {
      case InstanceType::Small:
        return "S";
      case InstanceType::Large:
        return "L";
      case InstanceType::XLarge:
        return "XL";
    }
    DEJAVU_PANIC("unknown instance type");
}

InstanceType
parseInstanceType(const std::string &name)
{
    std::string low(name);
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (low == "small" || low == "m1.small" || low == "s")
        return InstanceType::Small;
    if (low == "large" || low == "m1.large" || low == "l")
        return InstanceType::Large;
    if (low == "xlarge" || low == "extra large" || low == "m1.xlarge" ||
        low == "xl")
        return InstanceType::XLarge;
    fatal("unknown instance type name: ", name);
}

} // namespace dejavu
