/**
 * @file
 * EC2-style virtual instance types.
 *
 * The paper's evaluation uses Amazon EC2 "large" and "extra large"
 * instances at their July-2011 on-demand prices ($0.34/h and $0.68/h,
 * §4.5). Capacity is expressed in EC2 Compute Units (ECU) which our
 * service models translate into request-serving capacity.
 */

#ifndef DEJAVU_SIM_INSTANCE_TYPE_HH
#define DEJAVU_SIM_INSTANCE_TYPE_HH

#include <string>

namespace dejavu {

/** The instance sizes the evaluation scales across. */
enum class InstanceType { Small, Large, XLarge };

/** Static description of an instance type. */
struct InstanceSpec
{
    InstanceType type;
    std::string name;       ///< EC2-style API name.
    double computeUnits;    ///< ECU; proportional to request capacity.
    double memoryGb;
    double ioUnits;         ///< Relative I/O performance.
    double pricePerHour;    ///< USD, on-demand, July 2011.
};

/** Look up the spec for a type. */
const InstanceSpec &instanceSpec(InstanceType type);

/** Short display name ("L", "XL", ...), as used in Figures 9 and 10. */
std::string shortName(InstanceType type);

/** Parse "large"/"xlarge"/"small" (case-insensitive). */
InstanceType parseInstanceType(const std::string &name);

} // namespace dejavu

#endif // DEJAVU_SIM_INSTANCE_TYPE_HH
