#include "sim/interference.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {

InterferenceInjector::InterferenceInjector(EventQueue &queue,
                                           Cluster &cluster,
                                           Config config, Rng rng)
    : _queue(queue), _cluster(cluster), _config(std::move(config)),
      _rng(rng)
{
    DEJAVU_ASSERT(!_config.levels.empty(),
                  "interference injector needs at least one level");
    for (double level : _config.levels)
        DEJAVU_ASSERT(level >= 0.0 && level <= 0.95,
                      "interference level out of range: ", level);
}

void
InterferenceInjector::start()
{
    if (!_config.enabled || _active)
        return;
    _active = true;
    applyOnce();
    scheduleNext();
}

void
InterferenceInjector::stop()
{
    _active = false;
    for (int i = 0; i < _cluster.poolSize(); ++i)
        _cluster.vm(i).setInterference(0.0);
}

void
InterferenceInjector::applyOnce()
{
    if (!_config.enabled)
        return;
    for (int i = 0; i < _cluster.poolSize(); ++i) {
        const std::size_t pick = static_cast<std::size_t>(
            _rng.uniformInt(0, static_cast<int>(_config.levels.size()) - 1));
        const double loss = std::min(
            0.95, _config.levels[pick] * _config.contentionMultiplier);
        _cluster.vm(i).setInterference(loss);
    }
}

void
InterferenceInjector::scheduleNext()
{
    _queue.scheduleAfter(_config.period, [this] {
        if (!_active)
            return;
        applyOnce();
        scheduleNext();
    });
}

} // namespace dejavu
