/**
 * @file
 * Co-located tenant interference injection.
 *
 * §4.3 of the paper "mimic[s] the existence of a co-located tenant for
 * each virtual instance by injecting into each VM a microbenchmark
 * which occupies a varying amount (either 10% or 20%) of the VM's CPU
 * and memory over time". The injector reproduces exactly that: on a
 * periodic schedule it flips every VM of a cluster between the
 * configured occupancy levels (pseudo-randomly, deterministic per
 * seed).
 */

#ifndef DEJAVU_SIM_INTERFERENCE_HH
#define DEJAVU_SIM_INTERFERENCE_HH

#include <vector>

#include "common/random.hh"
#include "common/sim_time.hh"

namespace dejavu {

class Cluster;
class EventQueue;

/**
 * Periodically reassigns per-VM interference levels.
 */
class InterferenceInjector
{
  public:
    struct Config
    {
        /** Candidate occupancy fractions; §4.3 uses {0.10, 0.20}. */
        std::vector<double> levels = {0.10, 0.20};
        /** How often the co-located tenant's pressure changes. */
        SimTime period = hours(2);
        /** When false the injector leaves all VMs untouched. */
        bool enabled = true;
        /** Capacity loss per unit of occupancy: cache and memory-
         *  bandwidth contention amplify the raw CPU stealing (the
         *  co-runner degradations of Zhuravlev et al. [44] exceed
         *  the co-runner's own CPU share), so a 10-20% occupancy
         *  microbenchmark costs the victim more than 10-20%. */
        double contentionMultiplier = 1.8;
    };

    InterferenceInjector(EventQueue &queue, Cluster &cluster,
                         Config config, Rng rng);

    /** Begin the periodic injection schedule. */
    void start();

    /** Stop injecting and clear all interference. */
    void stop();

    /** Apply one round of (re)assignment immediately. */
    void applyOnce();

    bool enabled() const { return _config.enabled; }

  private:
    EventQueue &_queue;
    Cluster &_cluster;
    Config _config;
    Rng _rng;
    bool _active = false;

    void scheduleNext();
};

} // namespace dejavu

#endif // DEJAVU_SIM_INTERFERENCE_HH
