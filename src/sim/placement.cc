#include "sim/placement.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace dejavu {

PlacementMap::PlacementMap(Cluster &cluster, Config config)
    : _cluster(cluster), _config(config)
{
    DEJAVU_ASSERT(_config.vmsPerMachine >= 1, "need >= 1 VM per PM");
    const int pool = cluster.poolSize();
    _machineOfVm.resize(static_cast<std::size_t>(pool));
    for (int v = 0; v < pool; ++v)
        _machineOfVm[static_cast<std::size_t>(v)] =
            v / _config.vmsPerMachine;
    _numMachines =
        (pool + _config.vmsPerMachine - 1) / _config.vmsPerMachine;
}

int
PlacementMap::machineOf(int vmIndex) const
{
    DEJAVU_ASSERT(vmIndex >= 0 &&
                  vmIndex < static_cast<int>(_machineOfVm.size()),
                  "vm index out of range");
    return _machineOfVm[static_cast<std::size_t>(vmIndex)];
}

std::vector<int>
PlacementMap::vmsOn(int machine) const
{
    DEJAVU_ASSERT(machine >= 0 && machine < _numMachines,
                  "machine index out of range");
    std::vector<int> vms;
    for (int v = 0; v < static_cast<int>(_machineOfVm.size()); ++v)
        if (_machineOfVm[static_cast<std::size_t>(v)] == machine)
            vms.push_back(v);
    return vms;
}

void
PlacementMap::setMachinePressure(int machine, double loss)
{
    for (int v : vmsOn(machine))
        _cluster.vm(v).setInterference(loss);
}

void
PlacementMap::clearPressure()
{
    for (int v = 0; v < _cluster.poolSize(); ++v)
        _cluster.vm(v).setInterference(0.0);
}

PlacementAwareInjector::PlacementAwareInjector(EventQueue &queue,
                                               PlacementMap &placement,
                                               Config config, Rng rng)
    : _queue(queue), _placement(placement), _config(std::move(config)),
      _rng(rng)
{
    DEJAVU_ASSERT(!_config.levels.empty(), "need >= 1 level");
    DEJAVU_ASSERT(_config.tenantedFraction >= 0.0 &&
                  _config.tenantedFraction <= 1.0,
                  "bad tenanted fraction");
}

void
PlacementAwareInjector::applyOnce()
{
    for (int m = 0; m < _placement.machines(); ++m) {
        if (!_rng.bernoulli(_config.tenantedFraction)) {
            _placement.setMachinePressure(m, 0.0);
            continue;
        }
        const std::size_t pick = static_cast<std::size_t>(
            _rng.uniformInt(0,
                            static_cast<int>(_config.levels.size()) - 1));
        const double loss = std::min(
            0.95, _config.levels[pick] * _config.contentionMultiplier);
        _placement.setMachinePressure(m, loss);
    }
}

void
PlacementAwareInjector::start()
{
    if (_active)
        return;
    _active = true;
    applyOnce();
    scheduleNext();
}

void
PlacementAwareInjector::stop()
{
    _active = false;
    _placement.clearPressure();
}

void
PlacementAwareInjector::scheduleNext()
{
    _queue.scheduleAfter(_config.period, [this] {
        if (!_active)
            return;
        applyOnce();
        scheduleNext();
    });
}

} // namespace dejavu
