/**
 * @file
 * VM-to-physical-machine placement.
 *
 * The paper's interference argument rests on multi-tenancy:
 * "virtualization platforms do not provide ideal performance
 * isolation... application performance may suffer due to the
 * activities of the other virtual machines co-located on the same
 * physical server" (§2.2). A PlacementMap assigns a cluster's VMs to
 * physical machines; a co-located tenant then pressures *every* VM on
 * its host equally, so interference is correlated within a PM — the
 * structure that makes the paper's observation "even virtual
 * instances of the same type might have very different performance
 * over time" reproducible.
 */

#ifndef DEJAVU_SIM_PLACEMENT_HH
#define DEJAVU_SIM_PLACEMENT_HH

#include <vector>

#include "common/random.hh"
#include "sim/cluster.hh"

namespace dejavu {

/**
 * Static assignment of a cluster's VM pool onto physical machines.
 */
class PlacementMap
{
  public:
    struct Config
    {
        /** Cluster VMs packed per physical machine. */
        int vmsPerMachine = 2;
    };

    PlacementMap(Cluster &cluster, Config config);

    int machines() const
    { return static_cast<int>(_machineOfVm.empty() ? 0 : _numMachines); }

    /** Physical machine hosting a VM (by pool index). */
    int machineOf(int vmIndex) const;

    /** Pool indices of the VMs on one machine. */
    std::vector<int> vmsOn(int machine) const;

    /**
     * Apply a per-machine co-located tenant pressure: every VM on
     * machine @p machine gets capacity loss @p loss.
     */
    void setMachinePressure(int machine, double loss);

    /** Clear all pressure. */
    void clearPressure();

    Cluster &cluster() { return _cluster; }

  private:
    Cluster &_cluster;
    Config _config;
    std::vector<int> _machineOfVm;
    int _numMachines = 0;
};

/**
 * Interference injection at physical-machine granularity: each
 * machine's co-located tenant pressure is redrawn periodically, so
 * VMs sharing a host rise and fall together.
 */
class PlacementAwareInjector
{
  public:
    struct Config
    {
        std::vector<double> levels = {0.10, 0.20};
        SimTime period = hours(2);
        double contentionMultiplier = 1.8;
        /** Fraction of machines with a co-located tenant at all. */
        double tenantedFraction = 1.0;
    };

    PlacementAwareInjector(EventQueue &queue, PlacementMap &placement,
                           Config config, Rng rng);

    void start();
    void stop();
    void applyOnce();

  private:
    EventQueue &_queue;
    PlacementMap &_placement;
    Config _config;
    Rng _rng;
    bool _active = false;

    void scheduleNext();
};

} // namespace dejavu

#endif // DEJAVU_SIM_PLACEMENT_HH
