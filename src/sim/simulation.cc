#include "sim/simulation.hh"

namespace dejavu {

Simulation::Simulation(std::uint64_t seed)
    : _root(seed)
{
}

Simulation::~Simulation() = default;

void
Simulation::start()
{
    // An onStart() hook may register further actors (which must also
    // start) or destroy existing ones (which deregister), so rescan
    // rather than iterate a snapshot.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (Actor *actor : _actors) {
            if (!actor->_started) {
                actor->_started = true;
                actor->onStart();
                progressed = true;
                break;
            }
        }
    }
}

} // namespace dejavu
