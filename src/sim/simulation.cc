#include "sim/simulation.hh"

namespace dejavu {

Simulation::Simulation(std::uint64_t seed)
    : _root(seed)
{
}

} // namespace dejavu
