/**
 * @file
 * Top-level simulation context: clock + event queue + root RNG + the
 * registered actors that drive a run, handed to every component so a
 * whole run is reproducible from one seed.
 *
 * Actors (trace drivers, monitor probes, policy adapters, fleets)
 * register themselves on construction; the simulation starts each of
 * them exactly once when the run loop is first entered, after which
 * all behaviour is event-driven on the shared queue. The simulation
 * can own actors outright (spawn) or merely reference externally owned
 * ones — destruction order is safe either way because actors deregister
 * and cancel their pending events when destroyed.
 */

#ifndef DEJAVU_SIM_SIMULATION_HH
#define DEJAVU_SIM_SIMULATION_HH

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/sim_time.hh"
#include "sim/actor.hh"
#include "sim/event_queue.hh"

namespace dejavu {

/**
 * Owns the event queue, the seed-derived RNG tree and the actor
 * registry.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 42);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }

    SimTime now() const { return _queue.now(); }

    /** Derive an independent RNG stream for a subsystem. */
    Rng forkRng() { return _root.fork(); }

    /**
     * Construct an actor owned by this simulation. Returns a reference
     * that stays valid for the simulation's lifetime.
     */
    template <typename T, typename... Args>
    T &spawn(Args &&...args)
    {
        auto actor = std::make_unique<T>(*this,
                                         std::forward<Args>(args)...);
        T &ref = *actor;
        _owned.push_back(std::move(actor));
        return ref;
    }

    /**
     * Start every registered actor that has not started yet (their
     * onStart() hooks run in registration order). Called implicitly by
     * runUntil/runFor; idempotent. Actors registered after the first
     * start are started on the next call.
     */
    void start();

    /** Advance simulated time, executing due events. */
    void runUntil(SimTime limit)
    {
        start();
        _queue.runUntil(limit);
    }

    /** Advance by a duration (overflow-checked; saturates at the end
     *  of simulated time). */
    void runFor(SimTime duration)
    {
        runUntil(saturatingAdd(now(), duration));
    }

    /**
     * Pre-size the actor registry (and the spawn-ownership table) for
     * @p extra additional registrations — a 10k-member fleet attaches
     * tens of thousands of actors and should not grow the tables
     * incrementally.
     */
    void reserveActors(std::size_t extra)
    {
        _actors.reserve(_actors.size() + extra);
        _owned.reserve(_owned.size() + extra);
    }

    /** Registered actors, in registration order. */
    const std::vector<Actor *> &actors() const { return _actors; }

    std::size_t actorCount() const { return _actors.size(); }

  private:
    friend class Actor;

    void attach(Actor &actor) { _actors.push_back(&actor); }

    void detach(Actor &actor)
    {
        _actors.erase(std::remove(_actors.begin(), _actors.end(),
                                  &actor),
                      _actors.end());
    }

    EventQueue _queue;
    Rng _root;
    std::vector<Actor *> _actors;                 ///< All registered.
    std::vector<std::unique_ptr<Actor>> _owned;   ///< Spawned subset.
};

} // namespace dejavu

#endif // DEJAVU_SIM_SIMULATION_HH
