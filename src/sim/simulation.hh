/**
 * @file
 * Top-level simulation context: clock + event queue + root RNG, handed
 * to every component so a whole run is reproducible from one seed.
 */

#ifndef DEJAVU_SIM_SIMULATION_HH
#define DEJAVU_SIM_SIMULATION_HH

#include "common/random.hh"
#include "common/sim_time.hh"
#include "sim/event_queue.hh"

namespace dejavu {

/**
 * Owns the event queue and the seed-derived RNG tree.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 42);

    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }

    SimTime now() const { return _queue.now(); }

    /** Derive an independent RNG stream for a subsystem. */
    Rng forkRng() { return _root.fork(); }

    /** Advance simulated time, executing due events. */
    void runUntil(SimTime limit) { _queue.runUntil(limit); }

    /** Advance by a duration. */
    void runFor(SimTime duration) { _queue.runUntil(now() + duration); }

  private:
    EventQueue _queue;
    Rng _root;
};

} // namespace dejavu

#endif // DEJAVU_SIM_SIMULATION_HH
