#include "sim/vm.hh"

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace dejavu {

std::string
vmStateName(VmState state)
{
    switch (state) {
      case VmState::Stopped:
        return "stopped";
      case VmState::Booting:
        return "booting";
      case VmState::Warming:
        return "warming";
      case VmState::Running:
        return "running";
    }
    DEJAVU_PANIC("unknown VmState");
}

Vm::Vm(std::uint32_t id, InstanceType type)
    : Vm(id, type, Timing())
{
}

Vm::Vm(std::uint32_t id, InstanceType type, Timing timing)
    : _id(id), _type(type), _timing(timing)
{
}

void
Vm::setType(InstanceType type)
{
    DEJAVU_ASSERT(_state == VmState::Stopped,
                  "VM ", _id, " must be stopped to change type, is ",
                  vmStateName(_state));
    _type = type;
}

void
Vm::start(EventQueue &queue, bool preCreated)
{
    if (_state != VmState::Stopped)
        return;
    const std::uint64_t generation = ++_startGeneration;
    if (preCreated) {
        _state = VmState::Warming;
        queue.scheduleAfter(_timing.warmUp, [this, generation, &queue] {
            if (generation != _startGeneration)
                return;  // Stopped (and possibly restarted) meanwhile.
            _state = VmState::Running;
            _runningSince = queue.now();
        });
    } else {
        _state = VmState::Booting;
        const SimTime boot = _timing.coldBoot;
        queue.scheduleAfter(boot, [this, generation, &queue] {
            if (generation != _startGeneration)
                return;
            _state = VmState::Warming;
            queue.scheduleAfter(_timing.warmUp, [this, generation, &queue] {
                if (generation != _startGeneration)
                    return;
                _state = VmState::Running;
                _runningSince = queue.now();
            });
        });
    }
}

void
Vm::stop(EventQueue &)
{
    ++_startGeneration;  // invalidate any in-flight start completion
    _state = VmState::Stopped;
    _runningSince = -1;
}

void
Vm::setInterference(double fraction)
{
    DEJAVU_ASSERT(fraction >= 0.0 && fraction <= 0.95,
                  "interference fraction out of range: ", fraction);
    _interference = fraction;
}

void
Vm::setDaemonTheft(double fraction)
{
    DEJAVU_ASSERT(fraction >= 0.0 && fraction <= 0.95,
                  "daemon theft fraction out of range: ", fraction);
    _daemonTheft = fraction;
}

double
Vm::effectiveCapacityFactor() const
{
    if (_state != VmState::Running)
        return 0.0;
    return (1.0 - _interference) * (1.0 - _daemonTheft);
}

} // namespace dejavu
