/**
 * @file
 * Virtual machine lifecycle model.
 *
 * The paper pre-creates VM instances so that scaling actions only pay a
 * "short warm-up time" (§4, Testbed). We model the full lifecycle
 * anyway — Stopped → Booting → Warming → Running — so that both the
 * pre-created fast path and cold boots can be simulated.
 *
 * Each VM also carries an *interference level*: the fraction of its
 * nominal capacity currently consumed by co-located tenants on the same
 * physical host (§4.3 injects 10% or 20%).
 */

#ifndef DEJAVU_SIM_VM_HH
#define DEJAVU_SIM_VM_HH

#include <cstdint>
#include <string>

#include "common/sim_time.hh"
#include "sim/instance_type.hh"

namespace dejavu {

class EventQueue;

/** VM lifecycle states. */
enum class VmState { Stopped, Booting, Warming, Running };

/** Render a state name for logs. */
std::string vmStateName(VmState state);

/**
 * One virtual machine instance.
 */
class Vm
{
  public:
    /** Timing knobs for lifecycle transitions. */
    struct Timing
    {
        SimTime coldBoot = seconds(90);   ///< Stopped -> Running total.
        SimTime warmUp = seconds(20);     ///< Pre-created start cost.
    };

    Vm(std::uint32_t id, InstanceType type);
    Vm(std::uint32_t id, InstanceType type, Timing timing);

    std::uint32_t id() const { return _id; }
    VmState state() const { return _state; }
    InstanceType type() const { return _type; }
    const InstanceSpec &spec() const { return instanceSpec(_type); }

    /** Change the instance type; only legal while Stopped (scale-up
     *  experiments stop, retype and restart pre-created VMs). */
    void setType(InstanceType type);

    /**
     * Begin starting this VM on @p queue. Pre-created VMs (the
     * evaluation's configuration) skip the cold boot and only warm up.
     * No-op when already Running/Booting/Warming.
     */
    void start(EventQueue &queue, bool preCreated = true);

    /** Stop immediately (stopping is modelled as instantaneous). */
    void stop(EventQueue &queue);

    /** True when the VM can serve requests. */
    bool running() const { return _state == VmState::Running; }

    /** @name Interference from co-located tenants @{ */
    /** Combined fraction of capacity stolen by co-located tenants
     *  and background daemons, in [0, 0.95]: the two channels
     *  compose multiplicatively, 1 - (1 - tenant)(1 - daemon), so
     *  each thief takes its share of what the other left. With only
     *  one channel active this is exactly that channel's fraction
     *  (1 - (1 - x) rounds, so the single-thief case short-circuits
     *  rather than paying the round trip). */
    double interference() const
    {
        if (_daemonTheft == 0.0)
            return _interference;
        if (_interference == 0.0)
            return _daemonTheft;
        return 1.0 - (1.0 - _interference) * (1.0 - _daemonTheft);
    }
    void setInterference(double fraction);
    /** Background-daemon channel (dedup/scan co-runners): a second
     *  theft source that survives InterferenceInjector::stop() —
     *  daemons are host software, not a workload phase. */
    double daemonTheft() const { return _daemonTheft; }
    void setDaemonTheft(double fraction);
    /** @} */

    /**
     * Capacity multiplier: 0 when not running, otherwise
     * (1 - interference). Service models multiply their per-instance
     * capacity by this.
     */
    double effectiveCapacityFactor() const;

    /** Total accumulated running time (for billing sanity checks). */
    SimTime runningSince() const { return _runningSince; }

  private:
    std::uint32_t _id;
    InstanceType _type;
    Timing _timing;
    VmState _state = VmState::Stopped;
    double _interference = 0.0;
    double _daemonTheft = 0.0;
    SimTime _runningSince = -1;
    std::uint64_t _startGeneration = 0;  ///< Invalidates in-flight starts.
};

} // namespace dejavu

#endif // DEJAVU_SIM_VM_HH
