#include "workload/client_emulator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dejavu {

ClientEmulator::ClientEmulator()
    : ClientEmulator(Config(), Rng(11))
{
}

ClientEmulator::ClientEmulator(Config config, Rng rng)
    : _config(config), _rng(rng)
{
    DEJAVU_ASSERT(_config.thinkTimeSeconds > 0.0,
                  "think time must be positive");
}

double
ClientEmulator::offeredRate(double clients) const
{
    DEJAVU_ASSERT(clients >= 0.0, "negative client count");
    return clients / _config.thinkTimeSeconds;
}

double
ClientEmulator::sampleRate(double clients)
{
    const double mean = offeredRate(clients);
    const double noisy = mean * (1.0 + _config.jitter * _rng.gaussian());
    return std::max(0.0, noisy);
}

double
ClientEmulator::clientsForRate(double rate) const
{
    DEJAVU_ASSERT(rate >= 0.0, "negative rate");
    return rate * _config.thinkTimeSeconds;
}

} // namespace dejavu
