/**
 * @file
 * Client emulation: converts an emulated client population into an
 * offered request rate, as the publicly available benchmark drivers do
 * for RUBiS / SPECweb / YCSB (§4, "Internet services"). Each client is
 * a closed-loop session: issue request, wait think time, repeat — so
 * the offered rate is clients / (thinkTime + responseTime). For the
 * load levels of interest (response « think) the linear approximation
 * clients / thinkTime is used, with optional stochastic jitter.
 */

#ifndef DEJAVU_WORKLOAD_CLIENT_EMULATOR_HH
#define DEJAVU_WORKLOAD_CLIENT_EMULATOR_HH

#include "common/random.hh"
#include "workload/request_mix.hh"

namespace dejavu {

/**
 * Closed-loop client population model.
 */
class ClientEmulator
{
  public:
    struct Config
    {
        double thinkTimeSeconds = 7.0;  ///< RUBiS-style mean think time.
        double jitter = 0.02;           ///< Relative rate noise.
    };

    ClientEmulator();
    explicit ClientEmulator(Config config, Rng rng = Rng(11));

    /** Mean offered request rate (req/s) for @p clients clients. */
    double offeredRate(double clients) const;

    /**
     * One stochastic observation of the offered rate, as a monitor
     * sampling a finite window would see it.
     */
    double sampleRate(double clients);

    /** Clients required to generate @p rate req/s (inverse mapping). */
    double clientsForRate(double rate) const;

    const Config &config() const { return _config; }

  private:
    Config _config;
    Rng _rng;
};

} // namespace dejavu

#endif // DEJAVU_WORKLOAD_CLIENT_EMULATOR_HH
