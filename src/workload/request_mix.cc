#include "workload/request_mix.hh"

namespace dejavu {

RequestMix
cassandraUpdateHeavy()
{
    return {
        .name = "cassandra-update-heavy",
        .readFraction = 0.05,
        .cpuWeight = 1.2,
        .memWeight = 1.4,
        .ioWeight = 1.1,
        .staticFraction = 0.0,
    };
}

RequestMix
cassandraReadHeavy()
{
    return {
        .name = "cassandra-read-heavy",
        .readFraction = 0.95,
        .cpuWeight = 0.8,
        .memWeight = 1.0,
        .ioWeight = 0.9,
        .staticFraction = 0.0,
    };
}

RequestMix
cassandraBalanced()
{
    return {
        .name = "cassandra-balanced",
        .readFraction = 0.50,
        .cpuWeight = 1.0,
        .memWeight = 1.2,
        .ioWeight = 1.0,
        .staticFraction = 0.0,
    };
}

RequestMix
specwebBanking()
{
    return {
        .name = "specweb-banking",
        .readFraction = 0.80,
        .cpuWeight = 1.5,
        .memWeight = 0.9,
        .ioWeight = 0.6,
        .staticFraction = 0.15,
    };
}

RequestMix
specwebEcommerce()
{
    return {
        .name = "specweb-ecommerce",
        .readFraction = 0.85,
        .cpuWeight = 1.1,
        .memWeight = 1.0,
        .ioWeight = 0.9,
        .staticFraction = 0.30,
    };
}

RequestMix
specwebSupport()
{
    return {
        .name = "specweb-support",
        .readFraction = 1.00,
        .cpuWeight = 0.5,
        .memWeight = 0.7,
        .ioWeight = 1.8,
        .staticFraction = 0.85,
    };
}

RequestMix
rubisBrowsing()
{
    return {
        .name = "rubis-browsing",
        .readFraction = 1.00,
        .cpuWeight = 0.9,
        .memWeight = 0.9,
        .ioWeight = 0.8,
        .staticFraction = 0.40,
    };
}

RequestMix
rubisBidding()
{
    return {
        .name = "rubis-bidding",
        .readFraction = 0.85,
        .cpuWeight = 1.1,
        .memWeight = 1.0,
        .ioWeight = 1.0,
        .staticFraction = 0.25,
    };
}

RequestMix
ycsbUpdateHeavy()
{
    return {
        .name = "ycsb-update-heavy",
        .readFraction = 0.50,
        .cpuWeight = 1.1,
        .memWeight = 1.5,
        .ioWeight = 1.2,
        .staticFraction = 0.0,
    };
}

RequestMix
ycsbReadHeavy()
{
    return {
        .name = "ycsb-read-heavy",
        .readFraction = 0.95,
        .cpuWeight = 0.9,
        .memWeight = 1.2,
        .ioWeight = 0.8,
        .staticFraction = 0.0,
    };
}

RequestMix
ycsbReadOnly()
{
    return {
        .name = "ycsb-read-only",
        .readFraction = 1.00,
        .cpuWeight = 0.7,
        .memWeight = 1.1,
        .ioWeight = 0.6,
        .staticFraction = 0.0,
    };
}

RequestMix
ycsbReadLatest()
{
    // Inserts, not updates: reads hit the freshest (cached) records
    // and writes append, so memory pressure dominates I/O.
    return {
        .name = "ycsb-read-latest",
        .readFraction = 0.95,
        .cpuWeight = 0.8,
        .memWeight = 1.6,
        .ioWeight = 0.7,
        .staticFraction = 0.0,
    };
}

std::vector<RequestMix>
allMixes()
{
    return {
        cassandraUpdateHeavy(), cassandraReadHeavy(), cassandraBalanced(),
        specwebBanking(), specwebEcommerce(), specwebSupport(),
        rubisBrowsing(), rubisBidding(),
        ycsbUpdateHeavy(), ycsbReadHeavy(), ycsbReadOnly(),
        ycsbReadLatest(),
    };
}

} // namespace dejavu
