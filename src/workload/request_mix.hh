/**
 * @file
 * Request mixes: the *type* dimension of a workload.
 *
 * §3.3 stresses that a workload is characterised by both its intensity
 * (request rate) and its type (e.g. read/write ratio). A RequestMix
 * captures the type axis as resource-demand weights; service models
 * turn them into per-ECU capacity and the counter simulator turns them
 * into HPC signatures.
 */

#ifndef DEJAVU_WORKLOAD_REQUEST_MIX_HH
#define DEJAVU_WORKLOAD_REQUEST_MIX_HH

#include <string>
#include <vector>

namespace dejavu {

/**
 * Resource-demand description of one request population.
 */
struct RequestMix
{
    std::string name;
    double readFraction = 0.5;   ///< Reads vs writes.
    double cpuWeight = 1.0;      ///< Relative CPU demand per request.
    double memWeight = 1.0;      ///< Relative memory pressure.
    double ioWeight = 1.0;       ///< Relative disk/network demand.
    double staticFraction = 0.0; ///< Static-content share (web mixes).

    bool operator==(const RequestMix &o) const
    { return name == o.name; }
};

/** @name Benchmark mix catalog (paper §4, "Internet services") @{ */

/** Cassandra update-heavy: 95% writes, 5% reads (Figure 6/7 runs). */
RequestMix cassandraUpdateHeavy();

/** Cassandra read-heavy inversion (used by Figure 4 type sweeps). */
RequestMix cassandraReadHeavy();

/** Cassandra balanced 50/50 mix. */
RequestMix cassandraBalanced();

/** SPECweb2009 banking: dynamic, CPU-bound, HTTPS-like. */
RequestMix specwebBanking();

/** SPECweb2009 e-commerce: mixed static/dynamic. */
RequestMix specwebEcommerce();

/** SPECweb2009 support: large read-only downloads, I/O-bound
 *  (the mix driven through Figures 9 and 10). */
RequestMix specwebSupport();

/** RUBiS browsing mix: read-dominated page views. */
RequestMix rubisBrowsing();

/** RUBiS bidding mix: 15% read-write interactions (default mix). */
RequestMix rubisBidding();

/** @name YCSB core workloads (the BASK study's mixes) @{ */

/** YCSB workload A, update-heavy: 50% reads / 50% updates. */
RequestMix ycsbUpdateHeavy();

/** YCSB workload B, read-heavy: 95% reads / 5% updates. */
RequestMix ycsbReadHeavy();

/** YCSB workload C, read-only: 100% reads. */
RequestMix ycsbReadOnly();

/** YCSB workload D, read-latest: 95% reads / 5% inserts, skewed to
 *  the most recent records (cache-friendly reads, append writes). */
RequestMix ycsbReadLatest();

/** @} */

/** All catalogued mixes (used by sweeps and tests). */
std::vector<RequestMix> allMixes();

/** @} */

/**
 * A workload: one request mix at one intensity. Intensity is expressed
 * as the number of emulated clients, as in the paper's benchmarks.
 */
struct Workload
{
    RequestMix mix;
    double clients = 0.0;

    bool operator==(const Workload &o) const
    { return mix == o.mix && clients == o.clients; }
};

} // namespace dejavu

#endif // DEJAVU_WORKLOAD_REQUEST_MIX_HH
