#include "workload/trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dejavu {

LoadTrace::LoadTrace(std::string name, std::vector<double> hourlyLoad)
    : _name(std::move(name)), _load(std::move(hourlyLoad))
{
    DEJAVU_ASSERT(!_load.empty(), "trace must have at least one sample");
    const double mx = *std::max_element(_load.begin(), _load.end());
    DEJAVU_ASSERT(mx > 0.0, "trace must have positive load somewhere");
    for (double &v : _load) {
        DEJAVU_ASSERT(v >= 0.0, "negative load sample");
        v /= mx;
    }
}

double
LoadTrace::at(std::size_t h) const
{
    DEJAVU_ASSERT(!_load.empty(), "empty trace");
    if (h >= _load.size())
        h = _load.size() - 1;
    return _load[h];
}

double
LoadTrace::atTime(SimTime t) const
{
    if (t < 0)
        t = 0;
    return at(static_cast<std::size_t>(t / kHour));
}

double
LoadTrace::at(int day, int hour) const
{
    DEJAVU_ASSERT(day >= 0 && hour >= 0 && hour < 24,
                  "bad (day, hour) index");
    return at(static_cast<std::size_t>(day) * 24 + hour);
}

LoadTrace
LoadTrace::slice(std::size_t firstHour, std::size_t count) const
{
    DEJAVU_ASSERT(firstHour < _load.size(), "slice start out of range");
    const std::size_t end = std::min(firstHour + count, _load.size());
    std::vector<double> sub(_load.begin() + firstHour,
                            _load.begin() + end);
    // Note: re-normalizes to the slice's own peak by construction;
    // scale through the original peak when that matters.
    LoadTrace out;
    out._name = _name + "[" + std::to_string(firstHour) + ".." +
        std::to_string(end) + ")";
    out._load = std::move(sub);
    return out;
}

double
LoadTrace::peak() const
{
    if (_load.empty())
        return 0.0;
    return *std::max_element(_load.begin(), _load.end());
}

} // namespace dejavu
