/**
 * @file
 * Load traces: normalized per-hour load levels over multiple days.
 *
 * The paper drives its evaluation with HotMail and Windows Live
 * Messenger production traces (Sept 7–13, 2009; 1-hour granularity,
 * normalized; §4 "Workload traces"). We model a trace as a sequence of
 * hourly samples in [0, 1] that callers scale to client counts so
 * that the trace peak maps onto the service's full-capacity point.
 */

#ifndef DEJAVU_WORKLOAD_TRACE_HH
#define DEJAVU_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "common/sim_time.hh"

namespace dejavu {

/**
 * A normalized, hourly-sampled, multi-day load trace.
 */
class LoadTrace
{
  public:
    LoadTrace() = default;

    /** Build from hourly samples; normalizes so the max becomes 1. */
    LoadTrace(std::string name, std::vector<double> hourlyLoad);

    const std::string &name() const { return _name; }

    /** Number of hourly samples. */
    std::size_t hours() const { return _load.size(); }

    /** Whole days covered (rounded down). */
    int daysCovered() const { return static_cast<int>(hours() / 24); }

    /** Normalized load of hour index @p h (clamped to last sample). */
    double at(std::size_t h) const;

    /** Normalized load at a simulated time (piecewise constant). */
    double atTime(SimTime t) const;

    /** Normalized load for (day, hourOfDay), both 0-based. */
    double at(int day, int hour) const;

    /** All samples. */
    const std::vector<double> &samples() const { return _load; }

    /**
     * Slice out [firstHour, firstHour+count) as a new trace
     * (used to separate the learning day from the reuse days).
     */
    LoadTrace slice(std::size_t firstHour, std::size_t count) const;

    /** Peak (= 1 after normalization unless the trace is empty). */
    double peak() const;

  private:
    std::string _name;
    std::vector<double> _load;
};

} // namespace dejavu

#endif // DEJAVU_WORKLOAD_TRACE_HH
