#include "workload/trace_io.hh"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace dejavu {

LoadTrace
readTraceCsv(std::istream &in, const std::string &name)
{
    std::vector<double> load;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Trim whitespace and skip blanks/comments.
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);
        if (line.empty() || line[0] == '#')
            continue;
        // Header line.
        if (lineNo == 1 && line.find("hour") != std::string::npos)
            continue;

        std::istringstream cells(line);
        std::string hourCell, loadCell;
        if (!std::getline(cells, hourCell, ',') ||
            !std::getline(cells, loadCell, ','))
            fatal("trace CSV line ", lineNo,
                  ": expected 'hour,load', got: ", line);
        try {
            const double value = std::stod(loadCell);
            if (value < 0.0)
                fatal("trace CSV line ", lineNo,
                      ": negative load ", value);
            load.push_back(value);
        } catch (const std::exception &) {
            fatal("trace CSV line ", lineNo,
                  ": unparsable load value: ", loadCell);
        }
    }
    if (load.empty())
        fatal("trace CSV '", name, "' contains no samples");
    return LoadTrace(name, std::move(load));
}

LoadTrace
readTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readTraceCsv(in, path);
}

void
writeTraceCsv(std::ostream &out, const LoadTrace &trace)
{
    out << "hour,load\n";
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    for (std::size_t h = 0; h < trace.hours(); ++h)
        out << h << ',' << trace.at(h) << '\n';
}

void
writeTraceCsv(const std::string &path, const LoadTrace &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file: ", path);
    writeTraceCsv(out, trace);
}

} // namespace dejavu
