/**
 * @file
 * Load-trace serialization: read/write the hourly load series as CSV
 * so users can feed their own production traces (the format the
 * paper's HotMail/Messenger traces would arrive in: one sample per
 * hour, aggregated and normalized).
 *
 * Format: an optional "hour,load" header, then one `index,value` pair
 * per line. Values are re-normalized to a unit peak on load.
 */

#ifndef DEJAVU_WORKLOAD_TRACE_IO_HH
#define DEJAVU_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace dejavu {

/** Parse a trace from a CSV stream. fatal() on malformed input. */
LoadTrace readTraceCsv(std::istream &in, const std::string &name);

/** Parse a trace from a CSV file. fatal() if unreadable. */
LoadTrace readTraceCsv(const std::string &path);

/** Write a trace as CSV (with header). */
void writeTraceCsv(std::ostream &out, const LoadTrace &trace);

/** Write a trace to a file. fatal() if unwritable. */
void writeTraceCsv(const std::string &path, const LoadTrace &trace);

} // namespace dejavu

#endif // DEJAVU_WORKLOAD_TRACE_IO_HH
