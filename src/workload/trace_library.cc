#include "workload/trace_library.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace dejavu {

namespace {

/** Smooth bump centred at @p mu with width @p sigma, evaluated at h. */
double
bump(double h, double mu, double sigma)
{
    const double d = (h - mu) / sigma;
    return std::exp(-0.5 * d * d);
}

double
weekendScale(const TraceOptions &options, int day)
{
    // Trace starts Monday Sept 7, 2009; days 5 and 6 are the weekend.
    return (day % 7 == 5 || day % 7 == 6) ? options.weekendFactor : 1.0;
}

/** Per-day shape perturbation: amplitude and peak-phase shift. */
struct DayShape
{
    double amplitude = 1.0;
    double shiftHours = 0.0;
};

DayShape
dayShape(const TraceOptions &options, int day, Rng &rng)
{
    DayShape shape;
    if (day == 0)
        return shape;  // the learning day defines the reference
    // Mostly at-or-below the learning day, occasionally above: blind
    // replay of day-0 allocations then under-provisions those hours.
    const double lo = 1.0 - options.amplitudeVariation;
    const double hi = 1.0 + options.amplitudeVariation / 2.0;
    shape.amplitude = rng.uniform(lo, hi);
    shape.shiftHours = rng.uniformInt(-options.maxPeakShiftHours,
                                      options.maxPeakShiftHours);
    return shape;
}

} // namespace

LoadTrace
makeMessengerTrace(TraceOptions options)
{
    DEJAVU_ASSERT(options.numDays >= 1, "need at least one day");
    std::vector<double> load;
    load.reserve(static_cast<std::size_t>(options.numDays) * 24);
    Rng rng(options.seed ^ 0x4d534eULL);  // "MSN"

    for (int day = 0; day < options.numDays; ++day) {
        const double scale = weekendScale(options, day);
        const DayShape shape = dayShape(options, day, rng);
        for (int hour = 0; hour < 24; ++hour) {
            const double h = hour - shape.shiftHours;
            // Low night floor, moderate midday hump, pronounced
            // evening peak — the published Messenger trace's shape
            // (Figure 6a: deep nights, peaks touching 100%).
            double v = 0.10
                + 0.38 * bump(h, 13.0, 2.8)
                + 0.78 * bump(h, 20.0, 2.0);
            v *= scale * shape.amplitude;
            v *= 1.0 + options.jitter * rng.gaussian();
            load.push_back(std::max(0.02, v));
        }
    }
    return LoadTrace("messenger", std::move(load));
}

LoadTrace
makeHotmailTrace(TraceOptions options)
{
    DEJAVU_ASSERT(options.numDays >= 1, "need at least one day");
    std::vector<double> load;
    load.reserve(static_cast<std::size_t>(options.numDays) * 24);
    Rng rng(options.seed ^ 0x484d4cULL);  // "HML"

    for (int day = 0; day < options.numDays; ++day) {
        const double scale = weekendScale(options, day);
        const DayShape shape = dayShape(options, day, rng);
        for (int hour = 0; hour < 24; ++hour) {
            const double h = hour - shape.shiftHours;
            // Morning ramp into working-hours peaks, deep night floor
            // (mail checking is a working-hours activity).
            double v = 0.12
                + 0.55 * bump(h, 10.5, 2.2)
                + 0.62 * bump(h, 15.0, 2.5);
            v *= scale * shape.amplitude;
            v *= 1.0 + options.jitter * rng.gaussian();
            // Day-4 anomaly (0-based day 3): an evening flash crowd
            // that day 1 never exhibited; drives Figure 7's
            // unclassifiable-workload event.
            if (options.numDays > 3 && day == 3 &&
                (hour == 21 || hour == 22)) {
                v = 1.25;
            }
            load.push_back(std::max(0.02, v));
        }
    }
    return LoadTrace("hotmail", std::move(load));
}

LoadTrace
makeSineTrace(int numHours, double periodHours, double floor,
              std::uint64_t seed)
{
    DEJAVU_ASSERT(numHours >= 1, "need at least one hour");
    DEJAVU_ASSERT(periodHours > 0.0, "period must be positive");
    DEJAVU_ASSERT(floor >= 0.0 && floor < 1.0, "floor out of range");
    std::vector<double> load;
    load.reserve(static_cast<std::size_t>(numHours));
    Rng rng(seed);
    const double mid = (1.0 + floor) / 2.0;
    const double amp = (1.0 - floor) / 2.0;
    for (int h = 0; h < numHours; ++h) {
        const double phase = 2.0 * M_PI * h / periodHours;
        double v = mid + amp * std::sin(phase);
        v *= 1.0 + 0.01 * rng.gaussian();
        load.push_back(std::max(0.01, v));
    }
    return LoadTrace("sine", std::move(load));
}

} // namespace dejavu
