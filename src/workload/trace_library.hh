/**
 * @file
 * Synthetic stand-ins for the paper's production traces.
 *
 * The real HotMail / Windows Live Messenger traces (Thereska et al.,
 * EuroSys'11; Sept 7–13 2009) are not publicly available. The figures
 * in the paper show: strong diurnal periodicity at 1 h granularity, a
 * weekend dip (Sept 12–13), trace-specific shapes (Messenger smoother,
 * HotMail with sharper peaks), and — exercised by Figure 7 — one
 * workload on day 4 of HotMail that day 1 never saw. The generators
 * here reproduce those statistics deterministically from a seed.
 */

#ifndef DEJAVU_WORKLOAD_TRACE_LIBRARY_HH
#define DEJAVU_WORKLOAD_TRACE_LIBRARY_HH

#include <cstdint>

#include "workload/trace.hh"

namespace dejavu {

/** Options shared by the synthetic generators. */
struct TraceOptions
{
    int numDays = 7;
    std::uint64_t seed = 2009;
    /** Multiplicative weekend attenuation (days 5 and 6, 0-based). */
    double weekendFactor = 0.75;
    /** Std-dev of per-hour multiplicative jitter. */
    double jitter = 0.04;
    /** Day-to-day variation (absent from day 0, the learning day):
     *  each later day draws an amplitude factor in
     *  [1 - amplitudeVariation, 1 + amplitudeVariation/2] and shifts
     *  its diurnal peaks by up to maxPeakShiftHours. This is what
     *  defeats blind time-based replay (Autopilot, §4.1): the same
     *  hour of different days no longer carries the same load. */
    double amplitudeVariation = 0.18;
    int maxPeakShiftHours = 2;
};

/**
 * Messenger-like trace: smooth double-humped diurnal curve (midday and
 * evening peaks), moderate night floor.
 */
LoadTrace makeMessengerTrace(TraceOptions options = {});

/**
 * HotMail-like trace: sharper morning ramp, high midday plateau, lower
 * night floor, and an anomalous surge in the evening of day 4 (index
 * 3) that exceeds anything day 1 exhibits — the workload Figure 7
 * shows DejaVu failing to classify and bridging at full capacity.
 */
LoadTrace makeHotmailTrace(TraceOptions options = {});

/**
 * Sine-wave load as used by the Figure 1 motivation experiment: the
 * workload volume completes one full period every @p periodHours,
 * oscillating in [floor, 1].
 */
LoadTrace makeSineTrace(int numHours, double periodHours,
                        double floor = 0.2, std::uint64_t seed = 7);

} // namespace dejavu

#endif // DEJAVU_WORKLOAD_TRACE_LIBRARY_HH
