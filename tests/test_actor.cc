/**
 * @file
 * Unit tests for the actor runtime: recurring/cancellable events,
 * execution bands, tracked scheduling, and the Simulation actor
 * registry.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/actor.hh"
#include "sim/simulation.hh"

namespace dejavu {
namespace {

// --------------------------------------------------------------------
// Recurring events.
// --------------------------------------------------------------------

TEST(EventQueuePeriodic, FiresEveryPeriod)
{
    EventQueue q;
    int ticks = 0;
    q.schedulePeriodic(seconds(1), seconds(1), [&] { ++ticks; });
    q.runUntil(seconds(5) + milliseconds(500));
    EXPECT_EQ(ticks, 5);  // at 1, 2, 3, 4, 5 s
}

TEST(EventQueuePeriodic, CancelStopsTheSeries)
{
    EventQueue q;
    int ticks = 0;
    const EventId id =
        q.schedulePeriodic(seconds(1), seconds(1), [&] { ++ticks; });
    q.runUntil(seconds(3));
    EXPECT_EQ(ticks, 3);
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // already cancelled
    q.runUntil(seconds(10));
    EXPECT_EQ(ticks, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueuePeriodic, SelfCancelFromCallback)
{
    EventQueue q;
    int ticks = 0;
    EventId id = kInvalidEvent;
    id = q.schedulePeriodic(seconds(1), seconds(1), [&] {
        if (++ticks == 3)
            q.cancel(id);
    });
    q.runUntil(minutes(1));
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueuePeriodic, HandleStaysValidAcrossOccurrences)
{
    EventQueue q;
    const EventId id =
        q.schedulePeriodic(seconds(1), seconds(1), [] {});
    q.runUntil(seconds(4));
    EXPECT_TRUE(q.isPending(id));
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.isPending(id));
}

TEST(EventQueuePeriodic, InterleavesWithOneShots)
{
    EventQueue q;
    std::vector<int> order;
    q.schedulePeriodic(seconds(2), seconds(2), [&] { order.push_back(0); });
    q.schedule(seconds(3), [&] { order.push_back(1); });
    q.runUntil(seconds(6));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 0}));
}

// --------------------------------------------------------------------
// Execution bands.
// --------------------------------------------------------------------

TEST(EventBands, BandOrderBeatsInsertionOrderAtSameInstant)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(seconds(1), [&] { order.push_back(2); },
               EventBand::Driver);
    q.schedule(seconds(1), [&] { order.push_back(1); },
               EventBand::Probe);
    q.schedule(seconds(1), [&] { order.push_back(0); },
               EventBand::Normal);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventBands, TimeStillDominatesBand)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(seconds(2), [&] { order.push_back(0); },
               EventBand::Normal);
    q.schedule(seconds(1), [&] { order.push_back(2); },
               EventBand::Driver);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{2, 0}));
}

TEST(EventBands, FifoWithinBand)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(seconds(1), [&order, i] { order.push_back(i); },
                   EventBand::Probe);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --------------------------------------------------------------------
// isPending.
// --------------------------------------------------------------------

TEST(EventQueue, IsPendingTracksLifecycle)
{
    EventQueue q;
    const EventId id = q.schedule(seconds(1), [] {});
    EXPECT_TRUE(q.isPending(id));
    q.runAll();
    EXPECT_FALSE(q.isPending(id));
    const EventId id2 = q.schedule(seconds(2), [] {});
    q.cancel(id2);
    EXPECT_FALSE(q.isPending(id2));
}

// --------------------------------------------------------------------
// Actor registry and lifecycle.
// --------------------------------------------------------------------

class TickActor : public Actor
{
  public:
    explicit TickActor(Simulation &sim, SimTime period = seconds(1))
        : Actor(sim, "ticker"), _period(period)
    {
    }

    int starts = 0;
    int ticks = 0;

    void scheduleFarFuture()
    { at(hours(1), [this] { ++ticks; }); }

    void stopTicking() { cancelAll(); }

    using Actor::pendingEvents;

  protected:
    void onStart() override
    {
        ++starts;
        // `every` takes an absolute first occurrence (like `at`);
        // offset from now() so late-registered actors work too.
        every(saturatingAdd(now(), _period), _period,
              [this] { ++ticks; });
    }

  private:
    SimTime _period;
};

TEST(ActorTest, RegistersAndStartsExactlyOnce)
{
    Simulation sim;
    TickActor &actor = sim.spawn<TickActor>();
    EXPECT_EQ(sim.actorCount(), 1u);
    EXPECT_FALSE(actor.started());

    sim.runUntil(seconds(3));
    EXPECT_TRUE(actor.started());
    EXPECT_EQ(actor.starts, 1);
    EXPECT_EQ(actor.ticks, 3);

    sim.runFor(seconds(2));  // no re-start on subsequent runs
    EXPECT_EQ(actor.starts, 1);
    EXPECT_EQ(actor.ticks, 5);
}

TEST(ActorTest, LateRegistrationStartsOnNextRun)
{
    Simulation sim;
    sim.runUntil(seconds(1));
    TickActor &late = sim.spawn<TickActor>();
    EXPECT_FALSE(late.started());
    sim.runFor(seconds(2));
    EXPECT_TRUE(late.started());
    EXPECT_EQ(late.ticks, 2);
}

TEST(ActorTest, DestructionCancelsPendingEvents)
{
    Simulation sim;
    int outside = 0;
    {
        auto actor = std::make_unique<TickActor>(sim);
        sim.start();
        actor->scheduleFarFuture();
        EXPECT_GE(actor->pendingEvents(), 2u);
        sim.queue().schedule(minutes(5), [&] { ++outside; });
        // Actor dies with events still pending.
    }
    EXPECT_EQ(sim.actorCount(), 0u);
    sim.runUntil(hours(2));
    EXPECT_EQ(outside, 1);  // untracked events are untouched
    EXPECT_TRUE(sim.queue().empty());
}

TEST(ActorTest, CancelAllStopsTracking)
{
    Simulation sim;
    TickActor &actor = sim.spawn<TickActor>();
    sim.runUntil(seconds(2));
    EXPECT_EQ(actor.ticks, 2);
    actor.stopTicking();
    sim.runUntil(minutes(1));
    EXPECT_EQ(actor.ticks, 2);
    EXPECT_EQ(actor.pendingEvents(), 0u);
}

TEST(ActorTest, ManyTrackedEventsCompact)
{
    Simulation sim;
    TickActor &actor = sim.spawn<TickActor>(milliseconds(10));
    sim.runUntil(seconds(10));  // 1000 occurrences, 1 tracked id
    EXPECT_EQ(actor.ticks, 1000);
    EXPECT_EQ(actor.pendingEvents(), 1u);
}

// --------------------------------------------------------------------
// Simulation::runFor overflow safety.
// --------------------------------------------------------------------

TEST(SimulationTest, RunForSaturatesAtEndOfTime)
{
    Simulation sim;
    sim.runFor(kSimTimeMax);
    EXPECT_EQ(sim.now(), kSimTimeMax);
    sim.runFor(kSimTimeMax);  // would overflow without saturation
    EXPECT_EQ(sim.now(), kSimTimeMax);
}

TEST(SimulationTest, RunForNearEndOfTimeDoesNotWrap)
{
    Simulation sim;
    sim.runUntil(kSimTimeMax - seconds(1));
    sim.runFor(hours(1));
    EXPECT_EQ(sim.now(), kSimTimeMax);
}

TEST(SimulationTest, PeriodicSeriesEndsAtEndOfTime)
{
    // A periodic event whose re-arm saturates must not spin
    // runUntil(kSimTimeMax) forever: the series ends instead.
    EventQueue q;
    int ticks = 0;
    q.runUntil(kSimTimeMax - hours(2));
    q.schedulePeriodic(kSimTimeMax - hours(1), hours(1),
                       [&] { ++ticks; });
    q.runUntil(kSimTimeMax);  // must terminate
    EXPECT_EQ(ticks, 2);      // at max-1h and at max
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace dejavu
