/**
 * @file
 * Unit tests for the baseline provisioning policies in baselines/.
 */

#include <gtest/gtest.h>

#include "baselines/autopilot.hh"
#include "core/tuner.hh"
#include "baselines/overprovision.hh"
#include "baselines/reactive_tuning.hh"
#include "baselines/rightscale.hh"
#include "counters/profiler.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

class BaselineTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(5))),
        Rng(7)};

    Workload workloadFor(double clients)
    {
        return {cassandraUpdateHeavy(), clients};
    }
};

TEST_F(BaselineTest, AutopilotReplaysSchedule)
{
    Autopilot::Schedule schedule;
    for (int h = 0; h < 24; ++h)
        schedule[static_cast<std::size_t>(h)] =
            {1 + h % 10, InstanceType::Large};
    Autopilot pilot(service, schedule);

    queue.runUntil(hours(3));  // 03:00
    pilot.onWorkloadChange(workloadFor(1000.0));
    EXPECT_EQ(cluster.target().instances, 4);  // schedule[3]

    queue.runUntil(hours(27));  // day 2, 03:00 -> same entry
    pilot.onWorkloadChange(workloadFor(99999.0));  // load ignored
    EXPECT_EQ(cluster.target().instances, 4);
    EXPECT_DOUBLE_EQ(pilot.adaptationTimesSec().back(), 0.0);
}

TEST_F(BaselineTest, OverprovisionAlwaysMax)
{
    OverprovisionPolicy over(service, {10, InstanceType::Large});
    over.onWorkloadChange(workloadFor(10.0));
    EXPECT_EQ(cluster.target().instances, 10);
    over.onWorkloadChange(workloadFor(90000.0));
    EXPECT_EQ(cluster.target().instances, 10);
}

TEST_F(BaselineTest, RightScaleGrowsUnderPressure)
{
    RightScalePolicy::Config cfg;
    cfg.resizeCalmTime = minutes(3);
    RightScalePolicy rs(service, Rng(9), cfg);
    service.setWorkload(workloadFor(25000.0));  // needs ~7 instances
    cluster.setActiveInstances(2);
    queue.runUntil(queue.now() + minutes(1));

    rs.onWorkloadChange(service.workload());
    const int before = cluster.target().instances;
    // Feed monitoring ticks past the calm window until stable.
    for (int tick = 0; tick < 40; ++tick) {
        queue.runUntil(queue.now() + minutes(1));
        rs.onMonitorTick(service.sample());
    }
    EXPECT_GT(cluster.target().instances, before);
    // Grown allocation is adequate: utilization below threshold.
    EXPECT_LT(service.utilization(), cfg.scaleUpThreshold);
}

TEST_F(BaselineTest, RightScaleShrinksWhenIdle)
{
    RightScalePolicy::Config cfg;
    cfg.resizeCalmTime = minutes(3);
    RightScalePolicy rs(service, Rng(11), cfg);
    service.setWorkload(workloadFor(2000.0));
    cluster.setActiveInstances(8);
    queue.runUntil(queue.now() + minutes(1));
    rs.onWorkloadChange(service.workload());
    for (int tick = 0; tick < 60; ++tick) {
        queue.runUntil(queue.now() + minutes(1));
        rs.onMonitorTick(service.sample());
    }
    EXPECT_LT(cluster.target().instances, 8);
}

TEST_F(BaselineTest, RightScaleRespectsCalmTime)
{
    RightScalePolicy::Config cfg;
    cfg.resizeCalmTime = minutes(15);
    RightScalePolicy rs(service, Rng(13), cfg);
    service.setWorkload(workloadFor(34000.0));
    cluster.setActiveInstances(2);
    queue.runUntil(queue.now() + minutes(1));
    rs.onWorkloadChange(service.workload());

    // Ticks every minute: resizes may happen at most every 15 min.
    int resizes = 0;
    int last = cluster.target().instances;
    for (int tick = 0; tick < 30; ++tick) {
        queue.runUntil(queue.now() + minutes(1));
        rs.onMonitorTick(service.sample());
        if (cluster.target().instances != last) {
            ++resizes;
            last = cluster.target().instances;
        }
    }
    EXPECT_LE(resizes, 3);  // 30 min / 15 min calm + initial
}

TEST_F(BaselineTest, RightScaleStepSizes)
{
    RightScalePolicy::Config cfg;
    cfg.resizeCalmTime = minutes(1);
    cfg.growStep = 2;
    RightScalePolicy rs(service, Rng(15), cfg);
    service.setWorkload(workloadFor(34000.0));
    cluster.setActiveInstances(2);
    queue.runUntil(queue.now() + minutes(1));
    rs.onWorkloadChange(service.workload());
    const int before = cluster.target().instances;
    queue.runUntil(queue.now() + minutes(2));
    rs.onMonitorTick(service.sample());
    // One action: +2 instances (the RightScale default).
    EXPECT_EQ(cluster.target().instances, before + 2);
}

TEST_F(BaselineTest, RightScaleAdaptationTimeScalesWithCalm)
{
    // Multi-step adjustments cost (steps-1) * calm time; a single
    // resize counts as instantaneous (§4.1).
    for (SimTime calm : {minutes(3), minutes(15)}) {
        EventQueue q2;
        Cluster c2(q2, {});
        KeyValueService s2(q2, c2, Rng(17));
        RightScalePolicy::Config cfg;
        cfg.resizeCalmTime = calm;
        RightScalePolicy rs(s2, Rng(19), cfg);
        s2.setWorkload({cassandraUpdateHeavy(), 34000.0});
        c2.setActiveInstances(2);
        q2.runUntil(minutes(1));
        rs.onWorkloadChange(s2.workload());
        for (int tick = 0; tick < 120; ++tick) {
            q2.runUntil(q2.now() + minutes(1));
            rs.onMonitorTick(s2.sample());
        }
        ASSERT_FALSE(rs.adaptationTimesSec().empty());
        // 2 -> 10 requires 4 resizes of +2: 3 calm gaps.
        EXPECT_NEAR(rs.adaptationTimesSec().front(),
                    3.0 * toSeconds(calm),
                    toSeconds(calm) + 61.0);
    }
}

TEST_F(BaselineTest, ReactiveTuningDeploysAfterExperiments)
{
    ReactiveTuningPolicy reactive(service, profiler, Slo::latency(60.0),
                                  scaleOutSearchSpace(10));
    service.setWorkload(workloadFor(25000.0));
    cluster.setActiveInstances(2);
    queue.runUntil(queue.now() + minutes(1));

    reactive.onWorkloadChange(service.workload());
    EXPECT_GT(reactive.totalExperiments(), 1);
    // Before the tuning time elapses the allocation is stale.
    EXPECT_EQ(cluster.target().instances, 2);
    // After the experiments complete the right allocation deploys.
    queue.runUntil(queue.now() + hours(1));
    EXPECT_GT(cluster.target().instances, 2);
    EXPECT_LE(service.hypotheticalLatencyMs(
                  service.workload(), cluster.target()), 60.0);
}

TEST_F(BaselineTest, ReactiveTuningAdaptationIsMinutes)
{
    ReactiveTuningPolicy reactive(service, profiler, Slo::latency(60.0),
                                  scaleOutSearchSpace(10));
    service.setWorkload(workloadFor(25000.0));
    cluster.setActiveInstances(2);
    queue.runUntil(queue.now() + minutes(1));
    reactive.onWorkloadChange(service.workload());
    ASSERT_FALSE(reactive.adaptationTimesSec().empty());
    // Minutes, not seconds: each experiment costs 3 simulated min.
    EXPECT_GE(reactive.adaptationTimesSec().front(), 3 * 60.0);
}

TEST_F(BaselineTest, ReactiveTuningScalesDownCheaply)
{
    ReactiveTuningPolicy reactive(service, profiler, Slo::latency(60.0),
                                  scaleOutSearchSpace(10));
    service.setWorkload(workloadFor(3000.0));
    cluster.setActiveInstances(8);
    queue.runUntil(queue.now() + minutes(1));
    reactive.onWorkloadChange(service.workload());
    queue.runUntil(queue.now() + hours(2));
    EXPECT_LT(cluster.target().instances, 8);
}

} // namespace
} // namespace dejavu
