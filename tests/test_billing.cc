/**
 * @file
 * Unit tests for the billing meter (sim/billing.hh).
 */

#include <gtest/gtest.h>

#include "sim/billing.hh"

namespace dejavu {
namespace {

TEST(BillingMeter, ConstantRate)
{
    BillingMeter m;
    m.setRate(0, 3.40);
    EXPECT_NEAR(m.accruedDollars(hours(10)), 34.0, 1e-9);
}

TEST(BillingMeter, RateChangeMidway)
{
    BillingMeter m;
    m.setRate(0, 1.0);
    m.setRate(hours(2), 2.0);
    // 2h at $1 + 3h at $2 = $8.
    EXPECT_NEAR(m.accruedDollars(hours(5)), 8.0, 1e-9);
}

TEST(BillingMeter, AverageRate)
{
    BillingMeter m;
    m.setRate(0, 4.0);
    m.setRate(hours(1), 0.0);
    EXPECT_NEAR(m.averageRate(hours(2)), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(m.currentRate(), 0.0);
}

TEST(BillingMeter, ZeroBeforeFirstRate)
{
    BillingMeter m;
    EXPECT_DOUBLE_EQ(m.accruedDollars(hours(5)), 0.0);
}

TEST(BillingMeter, SubHourGranularity)
{
    BillingMeter m;
    m.setRate(0, 0.34);
    // 30 minutes at $0.34/h = $0.17.
    EXPECT_NEAR(m.accruedDollars(minutes(30)), 0.17, 1e-9);
}

} // namespace
} // namespace dejavu
