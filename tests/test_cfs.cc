/**
 * @file
 * Unit tests for CFS feature selection (ml/feature_selection.hh):
 * informative features are chosen, redundant copies and noise are
 * pruned — the behaviour §3.3 relies on to build Table 1.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hh"
#include "ml/feature_selection.hh"

namespace dejavu {
namespace {

/** Synthetic dataset: attrs 0 and 1 informative, 2 a near-copy of 0,
 *  3..5 pure noise. Class = quadrant of (signal0, signal1). */
Dataset
syntheticDataset(int n, std::uint64_t seed)
{
    Dataset d({"signal0", "signal1", "copy-of-0", "noise0", "noise1",
               "noise2"});
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double s0 = rng.uniform(-1.0, 1.0);
        const double s1 = rng.uniform(-1.0, 1.0);
        const int label = (s0 > 0 ? 1 : 0) + (s1 > 0 ? 2 : 0);
        d.add({s0, s1, s0 + 0.01 * rng.gaussian(), rng.gaussian(),
               rng.gaussian(), rng.gaussian()},
              label);
    }
    return d;
}

TEST(Cfs, SelectsInformativeFeatures)
{
    const Dataset d = syntheticDataset(400, 3);
    CfsSubsetSelector selector;
    const auto chosen = selector.select(d);
    // Attribute 2 is an interchangeable copy of 0: either satisfies.
    EXPECT_TRUE(std::count(chosen.begin(), chosen.end(), 0) ||
                std::count(chosen.begin(), chosen.end(), 2));
    EXPECT_TRUE(std::count(chosen.begin(), chosen.end(), 1));
}

TEST(Cfs, DropsNoise)
{
    const Dataset d = syntheticDataset(400, 5);
    CfsSubsetSelector selector;
    const auto chosen = selector.select(d);
    for (int noisy : {3, 4, 5})
        EXPECT_FALSE(std::count(chosen.begin(), chosen.end(), noisy))
            << "noise attribute " << noisy << " selected";
}

TEST(Cfs, PrunesRedundantCopy)
{
    // Attribute 2 duplicates attribute 0; CFS's redundancy term must
    // keep at most one of them.
    const Dataset d = syntheticDataset(400, 7);
    CfsSubsetSelector selector;
    const auto chosen = selector.select(d);
    const bool has0 = std::count(chosen.begin(), chosen.end(), 0) > 0;
    const bool has2 = std::count(chosen.begin(), chosen.end(), 2) > 0;
    EXPECT_TRUE(has0 || has2);
    EXPECT_FALSE(has0 && has2)
        << "both the feature and its copy were selected";
}

TEST(Cfs, MeritOfEmptySubsetIsZero)
{
    const Dataset d = syntheticDataset(100, 9);
    CfsSubsetSelector selector;
    EXPECT_DOUBLE_EQ(selector.merit(d, {}), 0.0);
}

TEST(Cfs, MeritPrefersInformativeOverNoise)
{
    const Dataset d = syntheticDataset(400, 11);
    CfsSubsetSelector selector;
    EXPECT_GT(selector.merit(d, {0, 1}), selector.merit(d, {3, 4}));
}

TEST(Cfs, ClassCorrelationsRankSignalAboveNoise)
{
    const Dataset d = syntheticDataset(400, 13);
    CfsSubsetSelector selector;
    const auto rcf = selector.classCorrelations(d);
    EXPECT_GT(rcf[0], rcf[3]);
    EXPECT_GT(rcf[1], rcf[4]);
}

TEST(Cfs, RespectsMaxFeatures)
{
    CfsSubsetSelector::Config cfg;
    cfg.maxFeatures = 1;
    CfsSubsetSelector selector(cfg);
    const auto chosen = selector.select(syntheticDataset(200, 17));
    EXPECT_EQ(chosen.size(), 1u);
}

TEST(Cfs, ResultIsSortedAscending)
{
    const auto chosen =
        CfsSubsetSelector().select(syntheticDataset(300, 19));
    EXPECT_TRUE(std::is_sorted(chosen.begin(), chosen.end()));
}

TEST(Cfs, FallsBackToBestAttributeWhenAllFiltered)
{
    // Tiny dataset where no attribute passes the eligibility filter:
    // the selector must still return one attribute, not die.
    CfsSubsetSelector::Config cfg;
    cfg.minClassCorrelation = 0.999;
    CfsSubsetSelector selector(cfg);
    const auto chosen = selector.select(syntheticDataset(100, 23));
    EXPECT_EQ(chosen.size(), 1u);
}

TEST(CfsDeath, NeedsLabels)
{
    Dataset d({"a"});
    d.add({1.0});
    d.add({2.0});
    CfsSubsetSelector selector;
    EXPECT_DEATH(selector.select(d), "classes");
}

} // namespace
} // namespace dejavu
