/**
 * @file
 * Unit tests for workload-class identification
 * (core/clustering_engine.hh) — the §3.4 pipeline: profile, select
 * features, cluster, pick representatives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/clustering_engine.hh"
#include "counters/counter_model.hh"
#include "counters/monitor.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

class ClusteringEngineTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    Monitor monitor{service, CounterModel(ServiceKind::KeyValue, Rng(5))};

    /** Profiling samples at a few distinct load plateaus. */
    std::vector<MetricSample> plateauSamples(int trialsPerLevel)
    {
        std::vector<MetricSample> samples;
        for (double clients : {3000.0, 3100.0, 15000.0, 15200.0,
                               33000.0, 33500.0}) {
            for (int t = 0; t < trialsPerLevel; ++t)
                samples.push_back(monitor.collect(
                    {cassandraUpdateHeavy(), clients}));
        }
        return samples;
    }
};

TEST_F(ClusteringEngineTest, IdentifiesPlateausAsClasses)
{
    ClusteringEngine engine(Rng(7));
    const auto result = engine.identifyClasses(plateauSamples(4));
    // Three load plateaus -> three (or marginally more) classes.
    EXPECT_GE(result.clustering.k, 3);
    EXPECT_LE(result.clustering.k, 4);
}

TEST_F(ClusteringEngineTest, SamePlateauLandsInSameClass)
{
    ClusteringEngine engine(Rng(9));
    const auto result = engine.identifyClasses(plateauSamples(4));
    const auto &assign = result.clustering.assignment;
    // Samples 0..7 are ~3000 clients: all in one class.
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(assign[static_cast<std::size_t>(i)], assign[0]);
    // Samples 16..23 are ~33000 clients: a different class.
    EXPECT_NE(assign[16], assign[0]);
}

TEST_F(ClusteringEngineTest, SchemaSelectsInformativeMetrics)
{
    ClusteringEngine engine(Rng(11));
    const auto result = engine.identifyClasses(plateauSamples(4));
    // Plateau data is so cleanly separable that CFS can justify a
    // single metric; on real diurnal traces it picks 5-8.
    EXPECT_GE(result.schema.size(), 1);
    // None of the pure-noise decoys may appear in the signature.
    for (const std::string &name : result.schema.names()) {
        EXPECT_NE(name, "white_noise");
        EXPECT_NE(name, "timer_tick");
        EXPECT_NE(name, "therm_trip");
        EXPECT_NE(name, "seg_reg_renames");
    }
}

TEST_F(ClusteringEngineTest, RepresentativesBelongToTheirClass)
{
    ClusteringEngine engine(Rng(13));
    const auto result = engine.identifyClasses(plateauSamples(4));
    for (int c = 0; c < result.clustering.k; ++c) {
        const int rep =
            result.representatives[static_cast<std::size_t>(c)];
        ASSERT_GE(rep, 0);
        EXPECT_EQ(result.clustering.assignment[
                      static_cast<std::size_t>(rep)], c);
    }
}

TEST_F(ClusteringEngineTest, MembersPartitionSamples)
{
    ClusteringEngine engine(Rng(15));
    const auto result = engine.identifyClasses(plateauSamples(3));
    std::set<int> seen;
    std::size_t total = 0;
    for (const auto &cls : result.members) {
        total += cls.size();
        for (int idx : cls)
            EXPECT_TRUE(seen.insert(idx).second)
                << "sample in two classes";
    }
    EXPECT_EQ(total, 18u);
}

TEST_F(ClusteringEngineTest, LabeledDatasetMatchesAssignment)
{
    ClusteringEngine engine(Rng(17));
    const auto result = engine.identifyClasses(plateauSamples(3));
    ASSERT_EQ(result.labeledSignatures.size(),
              static_cast<int>(result.clustering.assignment.size()));
    for (int i = 0; i < result.labeledSignatures.size(); ++i)
        EXPECT_EQ(result.labeledSignatures.label(i),
                  result.clustering.assignment[
                      static_cast<std::size_t>(i)]);
}

TEST_F(ClusteringEngineTest, DeterministicGivenSeed)
{
    ClusteringEngine a(Rng(21)), b(Rng(21));
    // Use a fresh monitor stream per engine so inputs are identical.
    Monitor m1(service, CounterModel(ServiceKind::KeyValue, Rng(23)));
    Monitor m2(service, CounterModel(ServiceKind::KeyValue, Rng(23)));
    std::vector<MetricSample> s1, s2;
    for (double clients : {4000.0, 20000.0, 35000.0}) {
        for (int t = 0; t < 4; ++t) {
            s1.push_back(m1.collect({cassandraUpdateHeavy(), clients}));
            s2.push_back(m2.collect({cassandraUpdateHeavy(), clients}));
        }
    }
    const auto ra = a.identifyClasses(s1);
    const auto rb = b.identifyClasses(s2);
    EXPECT_EQ(ra.clustering.k, rb.clustering.k);
    EXPECT_EQ(ra.clustering.assignment, rb.clustering.assignment);
    EXPECT_EQ(ra.schema.indices(), rb.schema.indices());
}

TEST_F(ClusteringEngineTest, RejectsTooFewSamples)
{
    ClusteringEngine engine(Rng(25));
    std::vector<MetricSample> few = {
        monitor.collect({cassandraUpdateHeavy(), 1000.0})};
    EXPECT_DEATH(engine.identifyClasses(few), "at least 4");
}

} // namespace
} // namespace dejavu
