/**
 * @file
 * Unit tests for the DejaVu runtime controller (core/controller.hh):
 * learning, cache-hit reuse, unknown-workload fallback, interference
 * feedback.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "counters/profiler.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

class ControllerTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(5))),
        Rng(7)};

    DejaVuController::Config config()
    {
        DejaVuController::Config cfg;
        cfg.slo = Slo::latency(60.0);
        cfg.searchSpace = scaleOutSearchSpace(10);
        return cfg;
    }

    std::vector<Workload> learningSet()
    {
        std::vector<Workload> w;
        for (double clients : {3000.0, 3500.0, 9000.0, 9500.0,
                               20000.0, 21000.0, 33000.0, 34000.0})
            w.push_back({cassandraUpdateHeavy(), clients});
        return w;
    }
};

TEST_F(ControllerTest, LearningPopulatesRepository)
{
    DejaVuController dv(service, profiler, config(), Rng(9));
    EXPECT_FALSE(dv.learned());
    const auto report = dv.learn(learningSet());
    EXPECT_TRUE(dv.learned());
    EXPECT_GE(report.classes, 3);
    EXPECT_EQ(dv.repository().entries(),
              static_cast<std::size_t>(report.classes));
    EXPECT_GT(report.tuningExperiments, report.classes);
    EXPECT_EQ(report.samples, 8 * 3);  // trialsPerWorkload = 3
}

TEST_F(ControllerTest, SharedRepositoryReusesPeerClassTunings)
{
    SharedRepository repo;
    DejaVuController first(service, profiler, config(), Rng(9));
    EXPECT_FALSE(first.sharesRepository());
    first.attachRepository(repo, "first");
    EXPECT_TRUE(first.sharesRepository());
    const auto ra = first.learn(learningSet());
    EXPECT_EQ(ra.classesReused, 0);  // nothing to reuse yet

    DejaVuController second(service, profiler, config(), Rng(13));
    second.attachRepository(repo, "second");
    const auto rb = second.learn(learningSet());
    // Canonical class labels + the shared kind namespace: the
    // second same-kind controller reuses the first one's tunings
    // (both have >= 3 classes, so >= 3 probes hit).
    EXPECT_GE(rb.classesReused, 3);
    EXPECT_GT(second.repository().crossHits(), 0u);
    EXPECT_EQ(repo.aggregateCrossHits(),
              second.repository().crossHits());

    // Both controllers still answer workload changes normally.
    const auto decision =
        second.onWorkloadChange({cassandraUpdateHeavy(), 9000.0});
    EXPECT_GE(decision.classId, -1);
}

TEST_F(ControllerTest, DetachReturnsToPrivateRepository)
{
    SharedRepository repo;
    DejaVuController dv(service, profiler, config(), Rng(9));
    dv.attachRepository(repo);
    EXPECT_EQ(repo.attachments(), 1);
    dv.detachRepository();
    EXPECT_FALSE(dv.sharesRepository());
    // The live-attachment count stays truthful after the detach.
    EXPECT_EQ(repo.attachments(), 0);
    dv.learn(learningSet());
    // Nothing leaked into the shared repository after the detach.
    EXPECT_EQ(repo.entries(), 0u);
    EXPECT_GT(dv.repository().entries(), 0u);
}

TEST_F(ControllerTest, AttachAfterLearnIsFatal)
{
    SharedRepository repo;
    DejaVuController dv(service, profiler, config(), Rng(9));
    dv.learn(learningSet());
    EXPECT_DEATH(dv.attachRepository(repo), "after learn");
}

TEST_F(ControllerTest, ClassAllocationsGrowWithLoad)
{
    DejaVuController dv(service, profiler, config(), Rng(11));
    const auto report = dv.learn(learningSet());
    // Some class must need few instances, some many.
    int mn = 99, mx = 0;
    for (const auto &a : report.classAllocations) {
        mn = std::min(mn, a.instances);
        mx = std::max(mx, a.instances);
    }
    EXPECT_LT(mn, mx);
}

TEST_F(ControllerTest, CacheHitReusesAllocation)
{
    DejaVuController dv(service, profiler, config(), Rng(13));
    dv.learn(learningSet());
    const auto d = dv.onWorkloadChange({cassandraUpdateHeavy(),
                                        20500.0});
    EXPECT_EQ(d.kind, DejaVuController::DecisionKind::CacheHit);
    EXPECT_GE(d.certainty, 0.6);
    // Adaptation is the ~10 s profiling window plus negligible
    // classification time (§3.5, Figure 8).
    EXPECT_GE(toSeconds(d.adaptationTime), 10.0);
    EXPECT_LT(toSeconds(d.adaptationTime), 12.0);
    // Deployment happens after the adaptation delay.
    queue.runUntil(queue.now() + seconds(11));
    EXPECT_EQ(cluster.target(), d.allocation);
}

TEST_F(ControllerTest, SimilarWorkloadsShareClass)
{
    DejaVuController dv(service, profiler, config(), Rng(15));
    dv.learn(learningSet());
    const auto a = dv.onWorkloadChange({cassandraUpdateHeavy(),
                                        20000.0});
    const auto b = dv.onWorkloadChange({cassandraUpdateHeavy(),
                                        21500.0});
    EXPECT_EQ(a.classId, b.classId);
    EXPECT_EQ(a.allocation, b.allocation);
}

TEST_F(ControllerTest, UnknownWorkloadDeploysFullCapacity)
{
    DejaVuController dv(service, profiler, config(), Rng(17));
    dv.learn(learningSet());
    // 3x the largest learned volume: far outside every class.
    const auto d = dv.onWorkloadChange({cassandraUpdateHeavy(),
                                        100000.0});
    EXPECT_EQ(d.kind,
              DejaVuController::DecisionKind::UnknownWorkload);
    EXPECT_EQ(d.allocation, cluster.maxAllocation());
    EXPECT_LT(d.certainty, 0.6);
    EXPECT_EQ(dv.consecutiveLowCertainty(), 1);
}

TEST_F(ControllerTest, RepeatedUnknownsRecommendRelearn)
{
    DejaVuController dv(service, profiler, config(), Rng(19));
    dv.learn(learningSet());
    for (int i = 0; i < 3; ++i)
        dv.onWorkloadChange({cassandraUpdateHeavy(), 100000.0 + i});
    EXPECT_TRUE(dv.relearnRecommended());
    // A classified workload resets the streak.
    dv.onWorkloadChange({cassandraUpdateHeavy(), 20000.0});
    EXPECT_FALSE(dv.relearnRecommended());
}

TEST_F(ControllerTest, SloFeedbackIgnoredWhenSatisfied)
{
    DejaVuController dv(service, profiler, config(), Rng(21));
    dv.learn(learningSet());
    dv.onWorkloadChange({cassandraUpdateHeavy(), 20000.0});
    queue.runUntil(queue.now() + minutes(5));
    Service::PerfSample ok;
    ok.meanLatencyMs = 30.0;
    ok.qosPercent = 99.0;
    EXPECT_FALSE(dv.onSloFeedback(ok).has_value());
}

TEST_F(ControllerTest, InterferenceFeedbackAddsResources)
{
    DejaVuController dv(service, profiler, config(), Rng(23));
    dv.learn(learningSet());
    const Workload w{cassandraUpdateHeavy(), 20000.0};
    service.setWorkload(w);
    const auto base = dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));

    // Co-located tenants appear: capacity drops 20%.
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.20);

    // Two consecutive violating samples are required.
    Service::PerfSample bad;
    bad.meanLatencyMs = service.meanLatencyMs();
    bad.qosPercent = 99.0;
    EXPECT_GT(bad.meanLatencyMs, 60.0);  // SLO is indeed violated
    EXPECT_FALSE(dv.onSloFeedback(bad).has_value());
    const auto reaction = dv.onSloFeedback(bad);
    ASSERT_TRUE(reaction.has_value());
    EXPECT_EQ(reaction->kind,
              DejaVuController::DecisionKind::InterferenceAdjust);
    EXPECT_GT(reaction->allocation.instances, base.allocation.instances);
    // The interference-aware entry is now cached.
    EXPECT_GT(dv.repository().entries(),
              static_cast<std::size_t>(dv.clustering().k));
}

TEST_F(ControllerTest, InterferenceCacheHitIsFast)
{
    DejaVuController dv(service, profiler, config(), Rng(25));
    dv.learn(learningSet());
    const Workload w{cassandraUpdateHeavy(), 20000.0};
    service.setWorkload(w);
    dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.20);
    Service::PerfSample bad;
    bad.meanLatencyMs = service.meanLatencyMs();
    bad.qosPercent = 99.0;
    (void)dv.onSloFeedback(bad);
    const auto first = dv.onSloFeedback(bad);
    ASSERT_TRUE(first.has_value());
    const SimTime slowPath = first->adaptationTime;

    // Same situation next hour: the (class, bucket) entry hits.
    queue.runUntil(queue.now() + hours(1));
    dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));
    bad.meanLatencyMs = service.meanLatencyMs();
    if (bad.meanLatencyMs > 60.0) {
        (void)dv.onSloFeedback(bad);
        const auto second = dv.onSloFeedback(bad);
        if (second.has_value()) {
            EXPECT_LT(second->adaptationTime, slowPath);
        }
    }
}

TEST_F(ControllerTest, InterferenceDetectionCanBeDisabled)
{
    auto cfg = config();
    cfg.interferenceDetection = false;
    DejaVuController dv(service, profiler, cfg, Rng(27));
    dv.learn(learningSet());
    dv.onWorkloadChange({cassandraUpdateHeavy(), 20000.0});
    queue.runUntil(queue.now() + minutes(5));
    Service::PerfSample bad;
    bad.meanLatencyMs = 200.0;
    bad.qosPercent = 99.0;
    EXPECT_FALSE(dv.onSloFeedback(bad).has_value());
    EXPECT_FALSE(dv.onSloFeedback(bad).has_value());
}

TEST_F(ControllerTest, AdaptationTimesRecorded)
{
    DejaVuController dv(service, profiler, config(), Rng(29));
    dv.learn(learningSet());
    dv.onWorkloadChange({cassandraUpdateHeavy(), 9000.0});
    dv.onWorkloadChange({cassandraUpdateHeavy(), 33000.0});
    ASSERT_EQ(dv.adaptationTimesSec().size(), 2u);
    for (double t : dv.adaptationTimesSec())
        EXPECT_NEAR(t, 10.05, 0.5);
}

TEST_F(ControllerTest, DeescalatesWhenInterferenceClears)
{
    DejaVuController dv(service, profiler, config(), Rng(35));
    dv.learn(learningSet());
    const Workload w{cassandraUpdateHeavy(), 20000.0};
    service.setWorkload(w);
    const auto base = dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));

    // Interference arrives; drive the escalation.
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.25);
    Service::PerfSample bad;
    bad.meanLatencyMs = service.meanLatencyMs();
    bad.qosPercent = 99.0;
    ASSERT_GT(bad.meanLatencyMs, 60.0);
    (void)dv.onSloFeedback(bad);
    const auto escalated = dv.onSloFeedback(bad);
    ASSERT_TRUE(escalated.has_value());
    queue.runUntil(queue.now() + hours(1));
    const int inflated = cluster.target().instances;
    EXPECT_GT(inflated, base.allocation.instances);

    // The noisy neighbour leaves; several calm samples later the
    // controller steps back to the baseline allocation.
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.0);
    for (int tick = 0; tick < 8; ++tick) {
        queue.runUntil(queue.now() + minutes(1));
        Service::PerfSample good;
        good.meanLatencyMs = service.meanLatencyMs();
        good.qosPercent = 99.0;
        (void)dv.onSloFeedback(good);
    }
    queue.runUntil(queue.now() + minutes(1));
    EXPECT_EQ(cluster.target().instances, base.allocation.instances);
}

TEST_F(ControllerTest, QosSloScaleUpPath)
{
    // The §4.2 configuration: fixed count, type toggling, QoS SLO.
    auto cfg = config();
    cfg.slo = Slo::qos(95.0);
    cfg.searchSpace = scaleUpSearchSpace(
        10, {InstanceType::Large, InstanceType::XLarge});
    DejaVuController dv(service, profiler, cfg, Rng(37));
    std::vector<Workload> learning;
    for (double clients : {20000.0, 21000.0, 60000.0, 62000.0})
        learning.push_back({cassandraUpdateHeavy(), clients});
    const auto report = dv.learn(learning);
    // The light class fits large; the heavy class needs extra-large.
    bool sawLarge = false, sawXl = false;
    for (const auto &a : report.classAllocations) {
        EXPECT_EQ(a.instances, 10);
        sawLarge |= a.type == InstanceType::Large;
        sawXl |= a.type == InstanceType::XLarge;
    }
    EXPECT_TRUE(sawLarge);
    EXPECT_TRUE(sawXl);

    const auto d = dv.onWorkloadChange({cassandraUpdateHeavy(),
                                        61000.0});
    EXPECT_EQ(d.kind, DejaVuController::DecisionKind::CacheHit);
    EXPECT_EQ(d.allocation.type, InstanceType::XLarge);
}

TEST_F(ControllerTest, MedoidRuleStillWorks)
{
    auto cfg = config();
    cfg.representativeRule =
        DejaVuController::RepresentativeRule::Medoid;
    DejaVuController dv(service, profiler, cfg, Rng(31));
    const auto report = dv.learn(learningSet());
    EXPECT_GE(report.classes, 3);
}

TEST_F(ControllerTest, ReuseBeforeLearningDies)
{
    DejaVuController dv(service, profiler, config(), Rng(33));
    EXPECT_DEATH(dv.onWorkloadChange({cassandraUpdateHeavy(), 1.0}),
                 "learn");
}

} // namespace
} // namespace dejavu
