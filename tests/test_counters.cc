/**
 * @file
 * Unit tests for the HPC catalog, counter response model and Monitor
 * (the counters module).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "counters/counter_model.hh"
#include "counters/hpc_event.hh"
#include "counters/monitor.hh"
#include "counters/profiler.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

TEST(HpcCatalog, CountsMatch)
{
    EXPECT_EQ(allHpcEvents().size(),
              static_cast<std::size_t>(kNumHpcEvents));
    EXPECT_EQ(allHpcEventNames().size(),
              static_cast<std::size_t>(kNumHpcEvents));
    EXPECT_EQ(kNumHpcEvents, 54);
    EXPECT_EQ(kNumHardwareEvents, 48);
}

TEST(HpcCatalog, NameRoundTrip)
{
    for (HpcEvent e : allHpcEvents())
        EXPECT_EQ(hpcEventByName(hpcEventName(e)), e);
}

TEST(HpcCatalog, Table1EventsPresent)
{
    // The eight RUBiS-signature HPCs of Table 1.
    const auto &t1 = table1Events();
    ASSERT_EQ(t1.size(), 8u);
    EXPECT_EQ(hpcEventName(t1[0]), "busq_empty");
    EXPECT_EQ(hpcEventName(t1[1]), "cpu_clk_unhalted");
    EXPECT_EQ(hpcEventName(t1[2]), "l2_ads");
    EXPECT_EQ(hpcEventName(t1[3]), "l2_reject_busq");
    EXPECT_EQ(hpcEventName(t1[4]), "l2_st");
    EXPECT_EQ(hpcEventName(t1[5]), "load_block");
    EXPECT_EQ(hpcEventName(t1[6]), "store_block");
    EXPECT_EQ(hpcEventName(t1[7]), "page_walks");
}

TEST(HpcCatalog, XentopClassification)
{
    EXPECT_FALSE(isXentopMetric(HpcEvent::CpuClkUnhalted));
    EXPECT_TRUE(isXentopMetric(HpcEvent::XenCpuPercent));
    EXPECT_TRUE(isXentopMetric(HpcEvent::XenVbdWr));
}

TEST(HpcCatalogDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(hpcEventByName("no_such_counter"),
                ::testing::ExitedWithCode(1), "unknown HPC event");
}

TEST(CounterModel, InformativeEventsRespondToLoad)
{
    CounterModel model(ServiceKind::Rubis, Rng(3));
    const RequestMix mix = rubisBidding();
    const auto low = model.expectedRates(mix, 50.0, 0.1);
    const auto high = model.expectedRates(mix, 500.0, 0.8);
    for (HpcEvent e : table1Events()) {
        const auto i = static_cast<std::size_t>(e);
        EXPECT_NE(low[i], high[i]) << hpcEventName(e);
    }
    // busq_empty is the *inverse* signal: falls with load.
    EXPECT_GT(low[static_cast<std::size_t>(HpcEvent::BusqEmpty)],
              high[static_cast<std::size_t>(HpcEvent::BusqEmpty)]);
    // cpu cycles rise with load.
    EXPECT_LT(low[static_cast<std::size_t>(HpcEvent::CpuClkUnhalted)],
              high[static_cast<std::size_t>(HpcEvent::CpuClkUnhalted)]);
}

TEST(CounterModel, TypeAxisSeparatesMixes)
{
    // §3.3 / Fig. 4: the same intensity with a different read/write
    // ratio must shift the signature-forming counters.
    CounterModel model(ServiceKind::KeyValue, Rng(5));
    const auto writes =
        model.expectedRates(cassandraUpdateHeavy(), 300.0, 0.5);
    const auto reads =
        model.expectedRates(cassandraReadHeavy(), 300.0, 0.5);
    const auto l2st = static_cast<std::size_t>(HpcEvent::L2St);
    const auto loadBlock = static_cast<std::size_t>(HpcEvent::LoadBlock);
    EXPECT_GT(writes[l2st], reads[l2st]);
    EXPECT_LT(writes[loadBlock], reads[loadBlock]);
}

TEST(CounterModel, DecoysBarelyRespond)
{
    CounterModel model(ServiceKind::Rubis, Rng(7));
    const RequestMix mix = rubisBidding();
    const auto low = model.expectedRates(mix, 50.0, 0.1);
    const auto high = model.expectedRates(mix, 500.0, 0.8);
    for (HpcEvent e : {HpcEvent::SegRegRenames, HpcEvent::EspSynch,
                       HpcEvent::Bogus1, HpcEvent::Bogus3}) {
        const auto i = static_cast<std::size_t>(e);
        EXPECT_NEAR(low[i], high[i], std::abs(low[i]) * 0.05 + 1e-9)
            << hpcEventName(e);
    }
}

TEST(CounterModel, ServiceKindShapesResponses)
{
    const RequestMix mix = cassandraBalanced();
    CounterModel kv(ServiceKind::KeyValue, Rng(9));
    CounterModel web(ServiceKind::SpecWeb, Rng(9));
    const auto a = kv.expectedRates(mix, 300.0, 0.5);
    const auto b = web.expectedRates(mix, 300.0, 0.5);
    int different = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::abs(a[i] - b[i]) > 1e-9 * (std::abs(a[i]) + 1))
            ++different;
    EXPECT_GT(different, 10);
}

TEST(CounterModel, SampleCountsScaleWithDuration)
{
    CounterModel model(ServiceKind::KeyValue, Rng(11),
                       {.noise = 0.0, .decoyNoise = 0.0});
    const RequestMix mix = cassandraUpdateHeavy();
    const auto counts10 = model.sampleCounts(mix, 200.0, 0.5, 10.0);
    const auto counts20 = model.sampleCounts(mix, 200.0, 0.5, 20.0);
    for (std::size_t i = 0; i < counts10.size(); ++i) {
        if (static_cast<HpcEvent>(i) == HpcEvent::Bogus2)
            continue;  // white-noise channel is never deterministic
        EXPECT_NEAR(counts20[i], 2.0 * counts10[i],
                    std::abs(counts10[i]) * 1e-9 + 1e-9);
    }
}

TEST(CounterModel, XentopMetricsInRange)
{
    CounterModel model(ServiceKind::KeyValue, Rng(13));
    const auto rates =
        model.expectedRates(cassandraUpdateHeavy(), 400.0, 0.9);
    const double cpu =
        rates[static_cast<std::size_t>(HpcEvent::XenCpuPercent)];
    const double mem =
        rates[static_cast<std::size_t>(HpcEvent::XenMemPercent)];
    EXPECT_GE(cpu, 0.0);
    EXPECT_LE(cpu, 100.0);
    EXPECT_GE(mem, 0.0);
    EXPECT_LE(mem, 100.0);
}

class MonitorTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(17)};

    Monitor makeMonitor(Monitor::Config cfg = {})
    {
        return Monitor(service,
                       CounterModel(service.kind(), Rng(19)), cfg);
    }
};

TEST_F(MonitorTest, SampleWidthMatchesCatalog)
{
    auto monitor = makeMonitor();
    service.setWorkload({cassandraUpdateHeavy(), 5000.0});
    const MetricSample s = monitor.collect();
    EXPECT_EQ(static_cast<int>(s.values.size()), Monitor::metricCount());
    EXPECT_GT(s.offeredRate, 0.0);
}

TEST_F(MonitorTest, NormalizationIsDurationInvariant)
{
    // §3.3: signatures normalized by sampling time generalize across
    // sampling durations. Compare 10 s and 60 s windows (zero noise).
    service.setWorkload({cassandraUpdateHeavy(), 5000.0});
    CounterModel::Config quiet;
    quiet.noise = 0.0;
    quiet.decoyNoise = 0.0;

    Monitor::Config short_cfg;
    short_cfg.sampleDuration = seconds(10);
    Monitor shortMon(service,
                     CounterModel(service.kind(), Rng(23), quiet),
                     short_cfg);
    Monitor::Config long_cfg;
    long_cfg.sampleDuration = seconds(60);
    Monitor longMon(service,
                    CounterModel(service.kind(), Rng(23), quiet),
                    long_cfg);

    const auto a = shortMon.collect();
    const auto b = longMon.collect();
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        if (static_cast<HpcEvent>(i) == HpcEvent::Bogus2)
            continue;
        EXPECT_NEAR(a.values[i], b.values[i],
                    std::abs(a.values[i]) * 1e-6 + 1e-9)
            << hpcEventName(static_cast<HpcEvent>(i));
    }
}

TEST_F(MonitorTest, MirrorFractionScalesProfilerLoad)
{
    service.setWorkload({cassandraUpdateHeavy(), 7000.0});
    Monitor::Config tiny;
    tiny.mirrorFraction = 0.05;
    auto small = makeMonitor(tiny);
    Monitor::Config big;
    big.mirrorFraction = 0.20;
    auto large = makeMonitor(big);
    EXPECT_NEAR(large.collect().offeredRate,
                4.0 * small.collect().offeredRate, 1e-6);
}

TEST_F(MonitorTest, ProfilerIsolatedMeasurementIgnoresInterference)
{
    // The profiling host runs in isolation: production interference
    // must not disturb the isolated latency estimate (§3.3).
    service.setWorkload({cassandraUpdateHeavy(), 7000.0});
    cluster.setActiveInstances(5);
    queue.runUntil(minutes(1));
    ProfilerHost profiler(service, makeMonitor(), Rng(29));
    const Workload w = service.workload();
    const ResourceAllocation alloc{5, InstanceType::Large};
    const double before = profiler.isolatedLatencyMs(w, alloc);
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.2);
    const double after = profiler.isolatedLatencyMs(w, alloc);
    // Same up to measurement noise (2% each).
    EXPECT_NEAR(before, after, 0.15 * before);
}

} // namespace
} // namespace dejavu
