/**
 * @file
 * Unit tests for the C4.5 decision tree (ml/decision_tree.hh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "ml/decision_tree.hh"

namespace dejavu {
namespace {

Dataset
thresholdData(int n, std::uint64_t seed)
{
    // Class = (x > 0.5) with a distractor attribute.
    Dataset d({"x", "junk"});
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform();
        d.add({x, rng.gaussian()}, x > 0.5 ? 1 : 0);
    }
    return d;
}

TEST(DecisionTree, LearnsSimpleThreshold)
{
    const Dataset train = thresholdData(200, 3);
    DecisionTree tree;
    tree.train(train);
    EXPECT_EQ(tree.predict({0.1, 0.0}).label, 0);
    EXPECT_EQ(tree.predict({0.9, 0.0}).label, 1);
}

TEST(DecisionTree, HighConfidenceOnCleanData)
{
    const Dataset train = thresholdData(200, 5);
    DecisionTree tree;
    tree.train(train);
    EXPECT_GT(tree.predict({0.95, 0.0}).confidence, 0.9);
}

TEST(DecisionTree, XorNeedsDepthTwo)
{
    Dataset d({"a", "b"});
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        d.add({a, b}, (a > 0) != (b > 0) ? 1 : 0);
    }
    DecisionTree tree;
    tree.train(d);
    EXPECT_GE(tree.depth(), 2);
    EXPECT_EQ(tree.predict({0.5, 0.5}).label, 0);
    EXPECT_EQ(tree.predict({-0.5, 0.5}).label, 1);
}

TEST(DecisionTree, PruningShrinksNoiseTrees)
{
    // Random labels: an unpruned tree overfits wildly; pruning must
    // collapse most of it.
    Dataset d({"x"});
    Rng rng(9);
    for (int i = 0; i < 200; ++i)
        d.add({rng.uniform()}, rng.uniformInt(0, 1));

    DecisionTree::Config unprunedCfg;
    unprunedCfg.prune = false;
    DecisionTree unpruned(unprunedCfg);
    unpruned.train(d);

    DecisionTree pruned;
    pruned.train(d);
    EXPECT_LT(pruned.numNodes(), unpruned.numNodes());
}

TEST(DecisionTree, MinLeafRespected)
{
    DecisionTree::Config cfg;
    cfg.minLeafInstances = 50;
    DecisionTree tree(cfg);
    const Dataset train = thresholdData(100, 11);
    tree.train(train);
    // With at most 100 instances and 50 per leaf, at most 3 nodes.
    EXPECT_LE(tree.numLeaves(), 2);
}

TEST(DecisionTree, SingleClassBecomesLeaf)
{
    Dataset d({"x"});
    d.add({1.0}, 0);
    d.add({2.0}, 0);
    d.add({3.0}, 0);
    DecisionTree tree;
    tree.train(d);
    EXPECT_EQ(tree.numNodes(), 1);
    EXPECT_EQ(tree.predict({99.0}).label, 0);
}

TEST(DecisionTree, MultiClassSplits)
{
    Dataset d({"x"});
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        const double x = rng.uniform(0.0, 3.0);
        d.add({x}, static_cast<int>(x));
    }
    DecisionTree tree;
    tree.train(d);
    EXPECT_EQ(tree.predict({0.5}).label, 0);
    EXPECT_EQ(tree.predict({1.5}).label, 1);
    EXPECT_EQ(tree.predict({2.5}).label, 2);
}

TEST(DecisionTree, ToTextMentionsAttribute)
{
    const Dataset train = thresholdData(100, 15);
    DecisionTree tree;
    tree.train(train);
    const std::string text = tree.toText({"x", "junk"});
    EXPECT_NE(text.find("x <="), std::string::npos);
}

TEST(DecisionTree, NormalInverseAccuracy)
{
    // Known quantiles of the standard normal.
    EXPECT_NEAR(DecisionTree::normalInverse(0.5), 0.0, 1e-9);
    EXPECT_NEAR(DecisionTree::normalInverse(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(DecisionTree::normalInverse(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(DecisionTree::normalInverse(0.841345), 1.0, 1e-3);
}

TEST(DecisionTree, AddErrsProperties)
{
    // Zero observed errors still predict some future errors.
    EXPECT_GT(DecisionTree::addErrs(10.0, 0.0, 0.25), 0.0);
    // More observed errors -> more predicted extra errors in total.
    const double few = DecisionTree::addErrs(100.0, 5.0, 0.25);
    const double many = DecisionTree::addErrs(100.0, 20.0, 0.25);
    EXPECT_GT(5.0 + few, 0.0);
    EXPECT_GT(20.0 + many, 5.0 + few);
    // Tighter confidence factor predicts more pessimistically.
    EXPECT_GT(DecisionTree::addErrs(50.0, 5.0, 0.10),
              DecisionTree::addErrs(50.0, 5.0, 0.40));
}

TEST(DecisionTreeDeath, PredictBeforeTrain)
{
    DecisionTree tree;
    EXPECT_DEATH(tree.predict({1.0}), "not trained");
}

TEST(DecisionTreeDeath, UnlabeledTrainingData)
{
    Dataset d({"x"});
    d.add({1.0});
    DecisionTree tree;
    EXPECT_DEATH(tree.train(d), "labels");
}

} // namespace
} // namespace dejavu
