/**
 * @file
 * Unit tests for discretization and information measures
 * (ml/discretize.hh).
 */

#include <gtest/gtest.h>

#include "ml/discretize.hh"

namespace dejavu {
namespace {

TEST(Discretize, EqualWidthBins)
{
    // Width 2.5 over [0, 10]: boundaries land in the upper bin, the
    // maximum is clamped into the last bin.
    const auto bins =
        discretizeEqualWidth({0.0, 2.5, 5.0, 7.5, 10.0}, 4);
    EXPECT_EQ(bins, (std::vector<int>{0, 1, 2, 3, 3}));
}

TEST(Discretize, ConstantColumnSingleBin)
{
    const auto bins = discretizeEqualWidth({3.0, 3.0, 3.0}, 5);
    EXPECT_EQ(bins, (std::vector<int>{0, 0, 0}));
}

TEST(Discretize, MaxValueInLastBin)
{
    const auto bins = discretizeEqualWidth({0.0, 1.0}, 10);
    EXPECT_EQ(bins.back(), 9);
}

TEST(Entropy, UniformIsLogN)
{
    EXPECT_NEAR(entropy({0, 1, 2, 3}), 2.0, 1e-12);
    EXPECT_NEAR(entropy({0, 0, 1, 1}), 1.0, 1e-12);
}

TEST(Entropy, ConstantIsZero)
{
    EXPECT_DOUBLE_EQ(entropy({5, 5, 5}), 0.0);
}

TEST(JointEntropy, IndependentAddsUp)
{
    // Two independent fair bits: H(X,Y) = 2.
    std::vector<int> x = {0, 0, 1, 1};
    std::vector<int> y = {0, 1, 0, 1};
    EXPECT_NEAR(jointEntropy(x, y), 2.0, 1e-12);
}

TEST(JointEntropy, PerfectlyDependent)
{
    std::vector<int> x = {0, 1, 0, 1};
    EXPECT_NEAR(jointEntropy(x, x), entropy(x), 1e-12);
}

TEST(SymmetricUncertainty, PerfectCorrelationIsOne)
{
    std::vector<int> x = {0, 1, 2, 0, 1, 2};
    EXPECT_NEAR(symmetricUncertainty(x, x), 1.0, 1e-12);
}

TEST(SymmetricUncertainty, IndependenceIsZero)
{
    std::vector<int> x = {0, 0, 1, 1};
    std::vector<int> y = {0, 1, 0, 1};
    EXPECT_NEAR(symmetricUncertainty(x, y), 0.0, 1e-12);
}

TEST(SymmetricUncertainty, SymmetricInArguments)
{
    std::vector<int> x = {0, 0, 1, 1, 2, 2};
    std::vector<int> y = {0, 1, 1, 1, 2, 0};
    EXPECT_DOUBLE_EQ(symmetricUncertainty(x, y),
                     symmetricUncertainty(y, x));
}

TEST(SymmetricUncertainty, BothConstantIsZero)
{
    std::vector<int> x = {1, 1, 1};
    EXPECT_DOUBLE_EQ(symmetricUncertainty(x, x), 0.0);
}

TEST(SymmetricUncertainty, BoundedUnitInterval)
{
    std::vector<int> x = {0, 1, 2, 3, 0, 1, 2, 3};
    std::vector<int> y = {0, 0, 1, 1, 2, 2, 3, 3};
    const double su = symmetricUncertainty(x, y);
    EXPECT_GE(su, 0.0);
    EXPECT_LE(su, 1.0);
}

TEST(DiscretizeDeath, BadArguments)
{
    EXPECT_DEATH(discretizeEqualWidth({}, 4), "empty");
    EXPECT_DEATH(discretizeEqualWidth({1.0}, 0), "bin");
    EXPECT_DEATH(entropy({}), "empty");
}

} // namespace
} // namespace dejavu
