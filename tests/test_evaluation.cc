/**
 * @file
 * Unit tests for classifier evaluation (ml/evaluation.hh).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ml/decision_tree.hh"
#include "ml/evaluation.hh"
#include "ml/naive_bayes.hh"

namespace dejavu {
namespace {

Dataset
easyData(int n, std::uint64_t seed)
{
    Dataset d({"x"});
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        d.add({x}, x > 0 ? 1 : 0);
    }
    return d;
}

TEST(Evaluation, PerfectAccuracyOnSeparableData)
{
    const Dataset d = easyData(200, 3);
    DecisionTree tree;
    tree.train(d);
    EXPECT_GT(accuracy(tree, d), 0.98);
}

TEST(Evaluation, ConfusionMatrixDiagonalDominates)
{
    const Dataset d = easyData(200, 5);
    DecisionTree tree;
    tree.train(d);
    const auto m = confusionMatrix(tree, d);
    ASSERT_EQ(m.size(), 2u);
    EXPECT_GT(m[0][0], m[0][1]);
    EXPECT_GT(m[1][1], m[1][0]);
}

TEST(Evaluation, ConfusionMatrixTotals)
{
    const Dataset d = easyData(100, 7);
    NaiveBayes nb;
    nb.train(d);
    const auto m = confusionMatrix(nb, d);
    int total = 0;
    for (const auto &row : m)
        for (int c : row)
            total += c;
    EXPECT_EQ(total, d.size());
}

TEST(Evaluation, CrossValidationHighOnEasyData)
{
    const Dataset d = easyData(300, 9);
    const double cv = crossValidate(
        [] { return std::make_unique<DecisionTree>(); }, d, 5, 42);
    EXPECT_GT(cv, 0.9);
}

TEST(Evaluation, CrossValidationNearChanceOnNoise)
{
    Dataset d({"x"});
    Rng rng(11);
    for (int i = 0; i < 300; ++i)
        d.add({rng.uniform()}, rng.uniformInt(0, 1));
    const double cv = crossValidate(
        [] { return std::make_unique<NaiveBayes>(); }, d, 5, 42);
    EXPECT_LT(cv, 0.65);
    EXPECT_GT(cv, 0.35);
}

TEST(Evaluation, CrossValidationDeterministic)
{
    const Dataset d = easyData(100, 13);
    auto factory = [] { return std::make_unique<DecisionTree>(); };
    EXPECT_DOUBLE_EQ(crossValidate(factory, d, 4, 7),
                     crossValidate(factory, d, 4, 7));
}

TEST(EvaluationDeath, BadFoldCount)
{
    const Dataset d = easyData(10, 15);
    auto factory = [] { return std::make_unique<DecisionTree>(); };
    EXPECT_DEATH(crossValidate(factory, d, 1, 7), "folds");
    EXPECT_DEATH(crossValidate(factory, d, 11, 7), "folds");
}

} // namespace
} // namespace dejavu
