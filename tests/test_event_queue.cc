/**
 * @file
 * Unit tests for the DES kernel (sim/event_queue.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace dejavu {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(seconds(3), [&] { order.push_back(3); });
    q.schedule(seconds(1), [&] { order.push_back(1); });
    q.schedule(seconds(2), [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), seconds(3));
}

TEST(EventQueue, FifoForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(seconds(5), [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime observed = -1;
    q.schedule(seconds(10), [&] {
        q.scheduleAfter(seconds(5), [&] { observed = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(observed, seconds(15));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule(seconds(1), [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // already cancelled
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelInvalidIdIsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEvent));
    EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(seconds(1), [&] { ++count; });
    q.schedule(seconds(5), [&] { ++count; });
    const std::size_t executed = q.runUntil(seconds(3));
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), seconds(3));  // clock advances to the limit
    q.runUntil(seconds(10));
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents)
{
    EventQueue q;
    q.runUntil(minutes(7));
    EXPECT_EQ(q.now(), minutes(7));
}

TEST(EventQueue, EventAtExactLimitRuns)
{
    EventQueue q;
    bool ran = false;
    q.schedule(seconds(3), [&] { ran = true; });
    q.runUntil(seconds(3));
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SelfSchedulingChain)
{
    EventQueue q;
    int ticks = 0;
    std::function<void()> tick = [&] {
        if (++ticks < 5)
            q.scheduleAfter(seconds(1), tick);
    };
    q.schedule(0, tick);
    q.runAll();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(q.now(), seconds(4));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(seconds(1), [&] { ++count; });
    q.schedule(seconds(2), [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(seconds(1), [] {});
    q.schedule(seconds(2), [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ExactBudgetDrainDoesNotTrip)
{
    // A queue that drains in exactly maxEvents events exhausts no
    // budget: nothing is pending, so the runaway guard must not fire.
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(seconds(i), [] {});
    EXPECT_EQ(q.runAll(5), 5u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExactBudgetDrainWithSelfScheduling)
{
    // Also exact when the budget-filling events are created while
    // draining.
    EventQueue q;
    int ticks = 0;
    std::function<void()> tick = [&] {
        if (++ticks < 7)
            q.scheduleAfter(seconds(1), tick);
    };
    q.schedule(0, tick);
    EXPECT_EQ(q.runAll(7), 7u);
    EXPECT_EQ(ticks, 7);
}

TEST(EventQueue, PendingCountsLiveSeriesDuringPeriodicFire)
{
    // While a periodic callback runs its heap entry is popped and the
    // series is not yet re-armed — but the series is still live, so
    // pending()/empty() must agree with isPending().
    EventQueue q;
    EventId id = kInvalidEvent;
    int fires = 0;
    std::size_t pendingDuringFire = 0;
    bool emptyDuringFire = true;
    bool isPendingDuringFire = false;
    id = q.schedulePeriodic(seconds(1), seconds(1), [&] {
        if (++fires == 1) {
            pendingDuringFire = q.pending();
            emptyDuringFire = q.empty();
            isPendingDuringFire = q.isPending(id);
        } else {
            q.cancel(id);
        }
    });
    q.runUntil(minutes(1));
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(pendingDuringFire, 1u);
    EXPECT_FALSE(emptyDuringFire);
    EXPECT_TRUE(isPendingDuringFire);
}

TEST(EventQueue, PendingDropsToZeroOnCancelDuringFire)
{
    EventQueue q;
    EventId id = kInvalidEvent;
    std::size_t pendingAfterSelfCancel = 99;
    id = q.schedulePeriodic(seconds(1), seconds(1), [&] {
        q.cancel(id);
        pendingAfterSelfCancel = q.pending();
    });
    q.runUntil(minutes(1));
    EXPECT_EQ(pendingAfterSelfCancel, 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.isPending(id));
}

TEST(EventQueue, PeriodicSelfCancelStopsSeries)
{
    EventQueue q;
    EventId id = kInvalidEvent;
    int fires = 0;
    id = q.schedulePeriodic(seconds(1), seconds(1), [&] {
        if (++fires == 3)
            EXPECT_TRUE(q.cancel(id));
    });
    q.runUntil(minutes(5));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(q.cancel(id));  // already cancelled
}

TEST(EventQueue, CancelOtherEventAtSameInstant)
{
    // A (Normal, earlier seq) cancels B scheduled for the same
    // instant: B's armed heap entry goes stale and must be skipped.
    EventQueue q;
    bool bRan = false;
    EventId b = kInvalidEvent;
    q.schedule(seconds(1), [&] { EXPECT_TRUE(q.cancel(b)); });
    b = q.schedule(seconds(1), [&] { bRan = true; });
    EXPECT_EQ(q.runAll(), 1u);
    EXPECT_FALSE(bRan);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelArmedPeriodicFromOneShot)
{
    EventQueue q;
    int fires = 0;
    const EventId series =
        q.schedulePeriodic(seconds(1), seconds(1), [&] { ++fires; });
    q.schedule(seconds(2) + 1, [&] { EXPECT_TRUE(q.cancel(series)); });
    q.runUntil(minutes(1));
    EXPECT_EQ(fires, 2);  // fired at 1 s and 2 s, then cancelled
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, PeriodicRescheduleAfterCancelGetsFreshId)
{
    EventQueue q;
    const EventId a = q.schedulePeriodic(seconds(1), seconds(1), [] {});
    q.cancel(a);
    const EventId b = q.schedulePeriodic(seconds(1), seconds(1), [] {});
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.isPending(a));
    EXPECT_TRUE(q.isPending(b));
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ExecutedCountsLifetimeEvents)
{
    EventQueue q;
    q.schedule(seconds(1), [] {});
    q.schedulePeriodic(seconds(2), seconds(2), [] {});
    q.runUntil(seconds(6));
    EXPECT_EQ(q.executed(), 4u);  // one-shot + fires at 2/4/6 s
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(seconds(5), [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(seconds(1), [] {}), "past");
}

TEST(EventQueueDeath, RunawayGuardFires)
{
    EventQueue q;
    std::function<void()> forever = [&] {
        q.scheduleAfter(1, forever);
    };
    q.schedule(0, forever);
    EXPECT_DEATH(q.runAll(1000), "budget");
}

} // namespace
} // namespace dejavu
