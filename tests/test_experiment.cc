/**
 * @file
 * Integration tests: the full case-study pipeline (scenario ->
 * learning -> reuse) reproduces the paper's headline behaviour.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "experiments/scenario.hh"

namespace dejavu {
namespace {

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

  private:
    LogLevel _before = LogLevel::Info;
};

using IntegrationTest = QuietLogs;

TEST_F(IntegrationTest, CassandraMessengerEndToEnd)
{
    ScenarioOptions opt;
    opt.seed = 42;
    opt.traceName = "messenger";
    auto stack = makeCassandraScaleOut(opt);
    const auto report = stack->learnDayOne();

    // A handful of classes (paper: 4 for Messenger).
    EXPECT_GE(report.classes, 3);
    EXPECT_LE(report.classes, 6);

    DejaVuPolicy policy(*stack->service, *stack->controller);
    const ExperimentResult r = stack->experiment->run(policy);

    // Headline claims (§4.1 / §4.5).
    EXPECT_GT(r.savingsPercent, 35.0);   // paper: ~55% scale-out
    EXPECT_LT(r.sloViolationFraction, 0.05);
    EXPECT_NEAR(r.adaptationSec.mean(), 10.0, 2.0);
    EXPECT_GT(stack->controller->repository().hitRate(), 0.9);
}

TEST_F(IntegrationTest, CassandraHotmailUnknownWorkloadDay4)
{
    ScenarioOptions opt;
    opt.seed = 42;
    opt.traceName = "hotmail";
    auto stack = makeCassandraScaleOut(opt);
    stack->learnDayOne();
    DejaVuPolicy policy(*stack->service, *stack->controller);
    const ExperimentResult r = stack->experiment->run(policy);

    // The day-4 flash crowd is unclassifiable -> full capacity
    // (§4.1, Figure 7): at least one such event, but rare.
    EXPECT_GE(policy.unknownWorkloadEvents(), 1);
    EXPECT_LE(policy.unknownWorkloadEvents(), 5);
    EXPECT_GT(r.savingsPercent, 40.0);   // paper: ~60%
    EXPECT_LT(r.sloViolationFraction, 0.05);
}

TEST_F(IntegrationTest, SpecWebScaleUpMeetsQos)
{
    ScenarioOptions opt;
    opt.seed = 42;
    opt.traceName = "hotmail";
    auto stack = makeSpecWebScaleUp(opt);
    stack->learnDayOne();
    DejaVuPolicy policy(*stack->service, *stack->controller);
    const ExperimentResult r = stack->experiment->run(policy);

    // §4.2: QoS stays above the 95% floor almost always and savings
    // land in the 35-45% band (two allocation choices only).
    EXPECT_GT(r.meanQosPercent, 95.0);
    EXPECT_LT(r.sloViolationFraction, 0.08);
    EXPECT_GT(r.savingsPercent, 20.0);
    EXPECT_LT(r.savingsPercent, 55.0);
}

TEST_F(IntegrationTest, ScaleOutSavesMoreThanScaleUp)
{
    // §4.5: finer allocation granularity (1..10 instances vs L/XL)
    // yields higher savings.
    ScenarioOptions opt;
    opt.seed = 42;
    opt.traceName = "hotmail";
    auto scaleOut = makeCassandraScaleOut(opt);
    scaleOut->learnDayOne();
    DejaVuPolicy outPolicy(*scaleOut->service, *scaleOut->controller);
    const auto outResult = scaleOut->experiment->run(outPolicy);

    auto scaleUp = makeSpecWebScaleUp(opt);
    scaleUp->learnDayOne();
    DejaVuPolicy upPolicy(*scaleUp->service, *scaleUp->controller);
    const auto upResult = scaleUp->experiment->run(upPolicy);

    EXPECT_GT(outResult.savingsPercent, upResult.savingsPercent);
}

TEST_F(IntegrationTest, DeterministicAcrossRuns)
{
    ScenarioOptions opt;
    opt.seed = 1234;
    auto run = [&] {
        auto stack = makeCassandraScaleOut(opt);
        stack->learnDayOne();
        DejaVuPolicy policy(*stack->service, *stack->controller);
        return stack->experiment->run(policy);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.costDollars, b.costDollars);
    EXPECT_DOUBLE_EQ(a.sloViolationFraction, b.sloViolationFraction);
    EXPECT_EQ(a.instances.size(), b.instances.size());
}

TEST_F(IntegrationTest, InterferenceDetectionProtectsSlo)
{
    // Figure 11: with detection on, the SLO holds under 10-20%
    // co-located load; with it off, violations dominate.
    auto runWith = [](bool detection) {
        ScenarioOptions opt;
        opt.seed = 42;
        opt.traceName = "messenger";
        opt.interference = true;
        opt.interferenceDetection = detection;
        auto stack = makeCassandraScaleOut(opt);
        stack->injector->start();
        stack->learnDayOne();
        DejaVuPolicy policy(*stack->service, *stack->controller);
        return stack->experiment->run(policy);
    };
    const auto on = runWith(true);
    const auto off = runWith(false);
    EXPECT_LT(on.sloViolationFraction, 0.2);
    EXPECT_GT(off.sloViolationFraction,
              2.0 * on.sloViolationFraction);
}

TEST_F(IntegrationTest, InterferenceCostsExtraResources)
{
    auto runWith = [](bool interference) {
        ScenarioOptions opt;
        opt.seed = 42;
        opt.traceName = "messenger";
        opt.interference = interference;
        auto stack = makeCassandraScaleOut(opt);
        if (stack->injector)
            stack->injector->start();
        stack->learnDayOne();
        DejaVuPolicy policy(*stack->service, *stack->controller);
        return stack->experiment->run(policy);
    };
    const auto clean = runWith(false);
    const auto noisy = runWith(true);
    // Figure 11(b): DejaVu provisions more under interference.
    EXPECT_GT(noisy.costDollars, clean.costDollars);
}

TEST_F(IntegrationTest, AdaptiveAllocationSavesEnergy)
{
    // §1: consolidating onto fewer instances lets the rest power
    // down; the energy meter must show savings alongside dollars.
    ScenarioOptions opt;
    opt.seed = 42;
    opt.traceName = "messenger";
    auto stack = makeCassandraScaleOut(opt);
    stack->learnDayOne();
    DejaVuPolicy policy(*stack->service, *stack->controller);
    const auto r = stack->experiment->run(policy);
    EXPECT_GT(r.energyKwh, 0.0);
    EXPECT_GT(r.maxEnergyKwh, r.energyKwh);
    EXPECT_GT(r.energySavingsPercent, 15.0);
    // Dollar savings exceed energy savings: busy instances still
    // draw dynamic power, while stopped ones cost nothing.
    EXPECT_GT(r.savingsPercent, r.energySavingsPercent - 10.0);
}

TEST_F(IntegrationTest, ExperimentSeriesAreComplete)
{
    ScenarioOptions opt;
    opt.seed = 9;
    opt.days = 3;
    auto stack = makeCassandraScaleOut(opt);
    stack->learnDayOne();
    DejaVuPolicy policy(*stack->service, *stack->controller);
    const auto r = stack->experiment->run(policy);
    EXPECT_EQ(r.latencyMs.size(), r.instances.size());
    EXPECT_EQ(r.latencyMs.size(), r.loadFraction.size());
    EXPECT_GT(r.latencyMs.size(), 3u * 24 * 50);  // ~60 ticks/hour
    // Time stamps are monotone.
    for (std::size_t i = 1; i < r.latencyMs.size(); ++i)
        EXPECT_GE(r.latencyMs[i].timeHours,
                  r.latencyMs[i - 1].timeHours);
}

} // namespace
} // namespace dejavu
