/**
 * @file
 * Tests for the extension features: re-clustering (§3.5), trace CSV
 * I/O, the Kingfisher-style cost-aware tuner (§5), and batch-workload
 * interference diagnosis (§3.7).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/batch.hh"
#include "core/controller.hh"
#include "core/cost_tuner.hh"
#include "counters/profiler.hh"
#include "experiments/dejavu_policy.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "workload/trace_io.hh"
#include "workload/trace_library.hh"

namespace dejavu {
namespace {

// --------------------------------------------------------------------
// Re-clustering (§3.5).
// --------------------------------------------------------------------

class RelearnTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(5))),
        Rng(7)};

    DejaVuController makeController()
    {
        DejaVuController::Config cfg;
        cfg.slo = Slo::latency(60.0);
        cfg.searchSpace = scaleOutSearchSpace(10);
        return DejaVuController(service, profiler, cfg, Rng(9));
    }

    std::vector<Workload> initialWorkloads()
    {
        std::vector<Workload> w;
        for (double clients : {3000.0, 3300.0, 9000.0, 9400.0,
                               16000.0, 16500.0})
            w.push_back({cassandraUpdateHeavy(), clients});
        return w;
    }
};

TEST_F(RelearnTest, RelearnAbsorbsNovelWorkloads)
{
    auto dv = makeController();
    dv.learn(initialWorkloads());

    // A much larger volume appears repeatedly: unknown every time.
    for (int i = 0; i < 3; ++i) {
        const auto d = dv.onWorkloadChange(
            {cassandraUpdateHeavy(), 40000.0 + 100.0 * i});
        EXPECT_EQ(d.kind,
                  DejaVuController::DecisionKind::UnknownWorkload);
    }
    EXPECT_TRUE(dv.relearnRecommended());
    EXPECT_EQ(dv.novelWorkloads().size(), 3u);

    const auto report = dv.relearn();
    EXPECT_EQ(dv.timesRelearned(), 1);
    EXPECT_TRUE(dv.novelWorkloads().empty());
    EXPECT_FALSE(dv.relearnRecommended());
    EXPECT_GE(report.classes, 3);

    // The previously unknown volume now classifies as a hit.
    const auto d = dv.onWorkloadChange(
        {cassandraUpdateHeavy(), 40200.0});
    EXPECT_EQ(d.kind, DejaVuController::DecisionKind::CacheHit);
    // And its cached allocation is large enough for the new volume.
    EXPECT_GE(d.allocation.instances, 8);
}

TEST_F(RelearnTest, RelearnRebuildsRepository)
{
    auto dv = makeController();
    dv.learn(initialWorkloads());
    const auto beforeKeys = dv.repository().entries();
    for (int i = 0; i < 3; ++i)
        dv.onWorkloadChange({cassandraUpdateHeavy(), 42000.0});
    dv.relearn();
    // One entry per (possibly different) class, all baseline buckets.
    EXPECT_GE(dv.repository().entries(), beforeKeys);
    for (const auto &key : dv.repository().keys())
        EXPECT_EQ(key.interferenceBucket, 0);
}

TEST_F(RelearnTest, RelearnBeforeLearnDies)
{
    auto dv = makeController();
    EXPECT_DEATH(dv.relearn(), "initial learn");
}

TEST_F(RelearnTest, PolicyAutoRelearnClosesTheLoop)
{
    auto dv = makeController();
    dv.learn(initialWorkloads());
    DejaVuPolicy policy(service, dv, /*autoRelearn=*/true);
    // A persistent new regime: three consecutive unknown workloads
    // trip the recommendation and the policy relearns on its own.
    for (int i = 0; i < 3; ++i)
        policy.onWorkloadChange(
            {cassandraUpdateHeavy(), 40000.0 + 50.0 * i});
    EXPECT_EQ(policy.relearnEvents(), 1);
    EXPECT_EQ(dv.timesRelearned(), 1);
    // The regime is absorbed: the next occurrence is a cache hit.
    policy.onWorkloadChange({cassandraUpdateHeavy(), 40100.0});
    EXPECT_EQ(policy.unknownWorkloadEvents(), 3);
    EXPECT_FALSE(dv.relearnRecommended());
}

// --------------------------------------------------------------------
// Trace CSV I/O.
// --------------------------------------------------------------------

TEST(TraceIo, RoundTrip)
{
    const LoadTrace original = makeMessengerTrace();
    std::stringstream buffer;
    writeTraceCsv(buffer, original);
    const LoadTrace parsed = readTraceCsv(buffer, "roundtrip");
    ASSERT_EQ(parsed.hours(), original.hours());
    for (std::size_t h = 0; h < parsed.hours(); ++h)
        EXPECT_NEAR(parsed.at(h), original.at(h), 1e-9);
}

TEST(TraceIo, ParsesHeaderCommentsAndBlanks)
{
    std::istringstream in(
        "hour,load\n"
        "# a comment\n"
        "0,10\n"
        "\n"
        "1,20\n"
        "2,5\n");
    const LoadTrace t = readTraceCsv(in, "test");
    ASSERT_EQ(t.hours(), 3u);
    EXPECT_DOUBLE_EQ(t.at(1), 1.0);   // normalized peak
    EXPECT_DOUBLE_EQ(t.at(0), 0.5);
    EXPECT_DOUBLE_EQ(t.at(2), 0.25);
}

TEST(TraceIoDeath, RejectsMalformedInput)
{
    std::istringstream garbage("0;10\n");
    EXPECT_EXIT(readTraceCsv(garbage, "bad"),
                ::testing::ExitedWithCode(1), "expected");
    std::istringstream nan("0,banana\n");
    EXPECT_EXIT(readTraceCsv(nan, "bad"),
                ::testing::ExitedWithCode(1), "unparsable");
    std::istringstream negative("0,-3\n");
    EXPECT_EXIT(readTraceCsv(negative, "bad"),
                ::testing::ExitedWithCode(1), "negative");
    std::istringstream empty("# nothing\n");
    EXPECT_EXIT(readTraceCsv(empty, "bad"),
                ::testing::ExitedWithCode(1), "no samples");
    EXPECT_EXIT(readTraceCsv("/no/such/file.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

// --------------------------------------------------------------------
// Cost-aware tuner (§5, Kingfisher-style).
// --------------------------------------------------------------------

class CostTunerTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(11)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(13))),
        Rng(15)};
};

TEST_F(CostTunerTest, GridSortedByCost)
{
    CostAwareTuner tuner(profiler, Slo::latency(60.0));
    const auto grid = tuner.candidateGrid();
    EXPECT_EQ(grid.size(), 30u);  // 3 types x 10 counts
    for (std::size_t i = 1; i < grid.size(); ++i)
        EXPECT_LE(grid[i - 1].dollarsPerHour(),
                  grid[i].dollarsPerHour());
}

TEST_F(CostTunerTest, FirstHitIsCheapestAdequate)
{
    CostAwareTuner tuner(profiler, Slo::latency(60.0));
    const Workload w{cassandraUpdateHeavy(), 20000.0};
    const auto result = tuner.tune(w);
    ASSERT_TRUE(result.feasible);
    EXPECT_LE(service.hypotheticalLatencyMs(w, result.allocation),
              60.0);
    // No cheaper allocation in the grid satisfies the target.
    for (const auto &candidate : tuner.candidateGrid()) {
        if (candidate.dollarsPerHour() <
            result.allocation.dollarsPerHour()) {
            EXPECT_GT(service.hypotheticalLatencyMs(w, candidate),
                      60.0 * 0.9);
        }
    }
}

TEST_F(CostTunerTest, NeverCostsMoreThanLinearSearch)
{
    const Slo slo = Slo::latency(60.0);
    Tuner linear(profiler, slo, scaleOutSearchSpace(10));
    CostAwareTuner costAware(profiler, slo);
    for (double clients : {4000.0, 12000.0, 22000.0, 34000.0}) {
        const Workload w{cassandraUpdateHeavy(), clients};
        const auto lin = linear.tune(w);
        const auto cheap = costAware.tune(w);
        if (lin.feasible && cheap.feasible) {
            EXPECT_LE(cheap.allocation.dollarsPerHour(),
                      lin.allocation.dollarsPerHour() + 1e-9)
                << "at " << clients << " clients";
        }
    }
}

TEST_F(CostTunerTest, CapacityPruningSavesExperiments)
{
    const Slo slo = Slo::latency(60.0);
    CostAwareTuner::Config pruned;
    pruned.capacityPruning = true;
    CostAwareTuner::Config exhaustive;
    exhaustive.capacityPruning = false;
    CostAwareTuner a(profiler, slo, pruned);
    CostAwareTuner b(profiler, slo, exhaustive);
    const Workload w{cassandraUpdateHeavy(), 30000.0};
    const auto ra = a.tune(w);
    const auto rb = b.tune(w);
    EXPECT_EQ(ra.allocation, rb.allocation);  // same optimum
    EXPECT_LT(ra.experiments, rb.experiments);
}

TEST_F(CostTunerTest, InfeasibleReturnsLargest)
{
    CostAwareTuner tuner(profiler, Slo::latency(60.0));
    const auto result =
        tuner.tune({cassandraUpdateHeavy(), 900000.0});
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.allocation.type, InstanceType::XLarge);
    EXPECT_EQ(result.allocation.instances, 10);
}

// --------------------------------------------------------------------
// Batch workloads (§3.7).
// --------------------------------------------------------------------

class BatchTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    BatchJobRunner runner{cluster, Rng(17)};

    std::vector<BatchTask> honestJob(int tasks, double inputMb)
    {
        std::vector<BatchTask> job;
        for (int i = 0; i < tasks; ++i) {
            BatchTask t;
            t.inputMb = inputMb;
            t.expectedRuntimeSec = runner.honestExpectationSec(t);
            job.push_back(t);
        }
        return job;
    }

    void interfere(double loss)
    {
        for (int i = 0; i < cluster.poolSize(); ++i)
            cluster.vm(i).setInterference(loss);
        cluster.setActiveInstances(4);
        queue.runUntil(queue.now() + minutes(1));
    }
};

TEST_F(BatchTest, RuntimeScalesWithInput)
{
    BatchTask small{64.0, 0.0};
    BatchTask large{256.0, 0.0};
    EXPECT_NEAR(runner.idealRuntimeSec(large),
                4.0 * runner.idealRuntimeSec(small), 1e-9);
}

TEST_F(BatchTest, CleanClusterNoViolation)
{
    cluster.setActiveInstances(4);
    queue.runUntil(minutes(1));
    BatchInterferenceProbe probe(runner);
    const auto report = probe.diagnose(honestJob(10, 64.0));
    EXPECT_EQ(report.verdict,
              BatchInterferenceProbe::Verdict::NoViolation);
}

TEST_F(BatchTest, InterferenceDetected)
{
    interfere(0.30);
    BatchInterferenceProbe probe(runner);
    const auto report = probe.diagnose(honestJob(10, 64.0));
    EXPECT_EQ(report.verdict,
              BatchInterferenceProbe::Verdict::Interference);
    // 30% capacity loss => runtime ratio ~1/0.7 ~ 1.43.
    EXPECT_NEAR(report.interferenceIndex, 1.0 / 0.7, 0.15);
    EXPECT_GT(report.interferenceBucket, 0);
}

TEST_F(BatchTest, MisestimateExposed)
{
    // Clean cluster, but the user promised half the honest runtime:
    // "interference is not significant and the user simply
    // mis-estimated the expected running times" (§3.7).
    cluster.setActiveInstances(4);
    queue.runUntil(minutes(1));
    auto job = honestJob(10, 64.0);
    for (auto &t : job)
        t.expectedRuntimeSec *= 0.5;
    BatchInterferenceProbe probe(runner);
    const auto report = probe.diagnose(job);
    EXPECT_EQ(report.verdict,
              BatchInterferenceProbe::Verdict::UserMisestimate);
    EXPECT_NEAR(report.misestimateRatio, 2.0, 0.3);
}

TEST_F(BatchTest, InterferenceTrumpsMisestimate)
{
    // Both problems at once: the index is the actionable signal.
    interfere(0.30);
    auto job = honestJob(10, 64.0);
    for (auto &t : job)
        t.expectedRuntimeSec *= 0.8;
    BatchInterferenceProbe probe(runner);
    const auto report = probe.diagnose(job);
    EXPECT_EQ(report.verdict,
              BatchInterferenceProbe::Verdict::Interference);
}

TEST_F(BatchTest, DiagnoseRequiresExpectations)
{
    cluster.setActiveInstances(2);
    queue.runUntil(minutes(1));
    BatchInterferenceProbe probe(runner);
    std::vector<BatchTask> job = {{64.0, 0.0}};  // no SLO given
    EXPECT_DEATH(probe.diagnose(job), "expected runtime");
}

} // namespace
} // namespace dejavu
