/**
 * @file
 * Tests for the deployment-oriented extensions: the multi-service
 * fleet with a shared profiling host (Figure 2 / §3.3 isolation),
 * the energy model (§1's consolidation argument), and repository
 * persistence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/controller.hh"
#include "core/repository.hh"
#include "counters/profiler.hh"
#include "experiments/fleet.hh"
#include "profiling/work_queue.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/energy.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

namespace dejavu {
namespace {

// --------------------------------------------------------------------
// Energy model and meter.
// --------------------------------------------------------------------

TEST(EnergyModel, IdleFloorAndDynamicRange)
{
    EnergyModel model;
    const ResourceAllocation one{1, InstanceType::Large};
    const double idle = model.watts(one, 0.0);
    const double busy = model.watts(one, 1.0);
    EXPECT_DOUBLE_EQ(idle, 120.0);
    EXPECT_DOUBLE_EQ(busy, 230.0);
}

TEST(EnergyModel, ScalesWithAllocation)
{
    EnergyModel model;
    const ResourceAllocation one{1, InstanceType::Large};
    const ResourceAllocation five{5, InstanceType::Large};
    const ResourceAllocation xl{1, InstanceType::XLarge};
    EXPECT_DOUBLE_EQ(model.watts(five, 0.5),
                     5.0 * model.watts(one, 0.5));
    // An XL draws as much as two larges (two large-equivalents).
    EXPECT_DOUBLE_EQ(model.watts(xl, 0.5), 2.0 * model.watts(one, 0.5));
}

TEST(EnergyModel, UtilizationClamped)
{
    EnergyModel model;
    const ResourceAllocation a{2, InstanceType::Large};
    EXPECT_DOUBLE_EQ(model.watts(a, 1.7), model.watts(a, 1.0));
    EXPECT_DOUBLE_EQ(model.watts(a, -0.3), model.watts(a, 0.0));
}

TEST(EnergyMeter, IntegratesToKwh)
{
    EnergyMeter meter;
    meter.update(0, 1000.0);       // 1 kW
    EXPECT_NEAR(meter.kiloWattHours(hours(2)), 2.0, 1e-9);
    meter.update(hours(2), 0.0);
    EXPECT_NEAR(meter.kiloWattHours(hours(5)), 2.0, 1e-9);
}

TEST(EnergyMeter, ConsolidationSavesEnergy)
{
    // Fewer instances at higher utilization beat many idle ones —
    // the §1 argument for adaptive allocation.
    EnergyModel model;
    const double consolidated =
        model.watts({3, InstanceType::Large}, 0.8);
    const double sprawled = model.watts({10, InstanceType::Large}, 0.24);
    EXPECT_LT(consolidated, sprawled);
}

// --------------------------------------------------------------------
// Repository persistence.
// --------------------------------------------------------------------

TEST(RepositoryPersistence, RoundTrip)
{
    Repository repo;
    repo.store({0, 0}, {3, InstanceType::Large});
    repo.store({0, 2}, {6, InstanceType::Large});
    repo.store({1, 0}, {10, InstanceType::XLarge});
    std::stringstream buffer;
    repo.save(buffer);
    Repository loaded = Repository::load(buffer);
    EXPECT_EQ(loaded.entries(), 3u);
    EXPECT_EQ(loaded.peek({0, 2})->instances, 6);
    EXPECT_EQ(loaded.peek({1, 0})->type, InstanceType::XLarge);
}

TEST(RepositoryPersistence, LoadSkipsHeaderAndComments)
{
    std::istringstream in(
        "class,bucket,instances,type\n"
        "# cached allocations\n"
        "2,1,4,m1.large\n");
    Repository repo = Repository::load(in);
    EXPECT_EQ(repo.entries(), 1u);
    EXPECT_EQ(repo.peek({2, 1})->instances, 4);
}

TEST(RepositoryPersistenceDeath, RejectsMalformed)
{
    std::istringstream bad("1,2,3\n");
    EXPECT_EXIT(Repository::load(bad), ::testing::ExitedWithCode(1),
                "expected");
    std::istringstream nan("a,b,c,m1.large\n");
    EXPECT_EXIT(Repository::load(nan), ::testing::ExitedWithCode(1),
                "unparsable");
    std::istringstream range("0,0,-2,m1.large\n");
    EXPECT_EXIT(Repository::load(range), ::testing::ExitedWithCode(1),
                "out-of-range");
}

// --------------------------------------------------------------------
// Multi-service fleet with a shared profiling host.
// --------------------------------------------------------------------

class FleetTest : public ::testing::Test
{
  protected:
    Simulation sim;
    EventQueue &queue = sim.queue();

    struct ServiceStack
    {
        std::unique_ptr<Cluster> cluster;
        std::unique_ptr<KeyValueService> service;
        std::unique_ptr<ProfilerHost> profiler;
        std::unique_ptr<DejaVuController> controller;
    };

    ServiceStack makeStack(std::uint64_t seed)
    {
        ServiceStack s;
        s.cluster = std::make_unique<Cluster>(queue, Cluster::Config{});
        s.service = std::make_unique<KeyValueService>(
            queue, *s.cluster, Rng(seed));
        s.profiler = std::make_unique<ProfilerHost>(
            *s.service,
            Monitor(*s.service,
                    CounterModel(ServiceKind::KeyValue, Rng(seed + 1))),
            Rng(seed + 2));
        DejaVuController::Config cfg;
        cfg.slo = Slo::latency(60.0);
        cfg.searchSpace = scaleOutSearchSpace(10);
        s.controller = std::make_unique<DejaVuController>(
            *s.service, *s.profiler, cfg, Rng(seed + 3));

        std::vector<Workload> learning;
        for (double clients : {3000.0, 3400.0, 12000.0, 12500.0,
                               25000.0, 26000.0})
            learning.push_back({cassandraUpdateHeavy(), clients});
        s.controller->learn(learning);
        return s;
    }
};

TEST(SlotSchedulerPolicy, FifoPicksArrivalOrder)
{
    const auto sched = makeSlotScheduler(SlotPolicy::Fifo);
    EXPECT_EQ(sched->name(), "fifo");
    const std::vector<ProfilingRequest> waiting{
        {0, 5, 0, seconds(30), 9.0},
        {1, 2, 0, seconds(10), 0.0},
        {2, 7, 0, seconds(1), 99.0}};
    EXPECT_EQ(sched->pick(waiting), 1u);  // seq 2 arrived first
}

TEST(SlotSchedulerPolicy, SjfPicksShortestSlotTiesByArrival)
{
    const auto sched =
        makeSlotScheduler(SlotPolicy::ShortestJobFirst);
    EXPECT_EQ(sched->name(), "sjf");
    std::vector<ProfilingRequest> waiting{
        {0, 1, 0, seconds(20), 0.0},
        {1, 2, 0, seconds(10), 0.0},
        {2, 3, 0, seconds(15), 0.0}};
    EXPECT_EQ(sched->pick(waiting), 1u);  // 10 s slot
    waiting[2].slotDuration = seconds(10);
    EXPECT_EQ(sched->pick(waiting), 1u);  // tie: earlier seq wins
}

TEST(SlotSchedulerPolicy, SloDebtPicksDeepestDebtorTiesFifo)
{
    const auto sched = makeSlotScheduler(SlotPolicy::SloDebtFirst);
    EXPECT_EQ(sched->name(), "slo-debt");
    std::vector<ProfilingRequest> waiting{
        {0, 1, 0, seconds(10), 2.0},
        {1, 2, 0, seconds(10), 8.0},
        {2, 3, 0, seconds(10), 8.0}};
    EXPECT_EQ(sched->pick(waiting), 1u);  // deepest debt, first in
    // No debt anywhere: degrades to FIFO.
    for (auto &r : waiting)
        r.sloDebt = 0.0;
    EXPECT_EQ(sched->pick(waiting), 0u);
}

TEST(SlotSchedulerPolicy, DefaultGrantTakesLowestFreeHost)
{
    // Hosts are identical; the canonical placement is the pick()'ed
    // request on the lowest-numbered free host.
    const auto sched = makeSlotScheduler(SlotPolicy::ShortestJobFirst);
    const std::vector<ProfilingRequest> waiting{
        {0, 1, 0, seconds(20), 0.0},
        {1, 2, 0, seconds(5), 0.0}};
    const SlotGrant grant = sched->grant(waiting, {3, 5, 7});
    EXPECT_EQ(grant.request, 1u);  // the 5 s job
    EXPECT_EQ(grant.host, 3u);     // lowest free id
}

TEST(SlotSchedulerPolicy, AdaptiveSwitchesOnDepthAndDebt)
{
    AdaptiveSlotScheduler sched;  // depth >= 8, debt >= 1.0
    EXPECT_EQ(sched.name(), "adaptive");

    // Shallow queue, no debt: FIFO (arrival order, seq tie-break).
    std::vector<ProfilingRequest> shallow{
        {0, 5, 0, seconds(30), 0.0},
        {1, 2, 0, seconds(10), 0.0}};
    EXPECT_EQ(sched.modeFor(shallow), "fifo");
    EXPECT_EQ(sched.pick(shallow), 1u);  // seq 2 first
    EXPECT_EQ(sched.fifoPicks(), 1u);

    // Deep queue (>= 8 waiters), still no debt: shortest-job-first.
    std::vector<ProfilingRequest> deep;
    for (std::uint64_t i = 0; i < 8; ++i)
        deep.push_back({i, i, 0, seconds(20 + i), 0.0});
    deep[5].slotDuration = seconds(1);
    EXPECT_EQ(sched.modeFor(deep), "sjf");
    EXPECT_EQ(sched.pick(deep), 5u);  // the 1 s slot
    EXPECT_EQ(sched.sjfPicks(), 1u);

    // Outstanding debt trumps depth regardless of queue size.
    shallow[0].sloDebt = 1.0;
    EXPECT_EQ(sched.modeFor(shallow), "slo-debt");
    EXPECT_EQ(sched.pick(shallow), 0u);  // the debtor
    deep[3].sloDebt = 2.0;
    EXPECT_EQ(sched.modeFor(deep), "slo-debt");
    EXPECT_EQ(sched.pick(deep), 3u);
    EXPECT_EQ(sched.debtPicks(), 2u);
    EXPECT_EQ(sched.fifoPicks(), 1u);
    EXPECT_EQ(sched.sjfPicks(), 1u);
}

TEST(SlotSchedulerPolicy, AdaptiveHonorsCustomThresholds)
{
    AdaptiveSlotScheduler::Thresholds t;
    t.sjfQueueDepth = 2;
    t.debtTrigger = 5.0;
    AdaptiveSlotScheduler sched(t);

    // Depth 2 already counts as a burst under the custom threshold.
    std::vector<ProfilingRequest> waiting{
        {0, 1, 0, seconds(20), 0.0},
        {1, 2, 0, seconds(5), 0.0}};
    EXPECT_EQ(sched.modeFor(waiting), "sjf");

    // Debt below the trigger is ignored; the *total* across waiters
    // crossing it flips the mode.
    waiting[0].sloDebt = 2.0;
    waiting[1].sloDebt = 2.9;
    EXPECT_EQ(sched.modeFor(waiting), "sjf");
    waiting[1].sloDebt = 3.0;
    EXPECT_EQ(sched.modeFor(waiting), "slo-debt");
}

// --------------------------------------------------------------------
// Profiling host pool.
// --------------------------------------------------------------------

TEST(ProfilingHostPool, TracksBusyAndFreeHosts)
{
    ProfilingHostPool pool(3);
    EXPECT_EQ(pool.hosts(), 3);
    EXPECT_EQ(pool.busy(), 0);
    EXPECT_TRUE(pool.anyFree());
    EXPECT_EQ(pool.freeHosts(), (std::vector<std::size_t>{0, 1, 2}));

    pool.acquire(1);
    EXPECT_EQ(pool.busy(), 1);
    EXPECT_EQ(pool.freeHosts(), (std::vector<std::size_t>{0, 2}));

    pool.acquire(0);
    pool.acquire(2);
    EXPECT_FALSE(pool.anyFree());
    EXPECT_TRUE(pool.freeHosts().empty());

    pool.release(1);
    EXPECT_TRUE(pool.anyFree());
    EXPECT_EQ(pool.freeHosts(), (std::vector<std::size_t>{1}));
    EXPECT_EQ(pool.busy(), 2);
}

TEST(ProfilingHostPoolDeath, RejectsMisuse)
{
    EXPECT_DEATH(ProfilingHostPool(0), "1 host");
    ProfilingHostPool pool(2);
    EXPECT_DEATH(pool.acquire(2), "no such");
    EXPECT_DEATH(pool.release(0), "not busy");
    pool.acquire(0);
    EXPECT_DEATH(pool.acquire(0), "already busy");
}

TEST(SlotSchedulerPolicy, FactoryByNameMatchesEnum)
{
    EXPECT_EQ(makeSlotScheduler("fifo")->name(), "fifo");
    EXPECT_EQ(makeSlotScheduler("sjf")->name(), "sjf");
    EXPECT_EQ(makeSlotScheduler("slo-debt")->name(), "slo-debt");
    EXPECT_EQ(makeSlotScheduler("adaptive")->name(), "adaptive");
    EXPECT_EQ(slotPolicyNames().size(), 4u);
}

TEST(SlotSchedulerPolicyDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeSlotScheduler("lifo"),
                ::testing::ExitedWithCode(1), "unknown slot policy");
}

TEST_F(FleetTest, ConcurrentRequestsQueueForTheProfiler)
{
    auto s1 = makeStack(100);
    auto s2 = makeStack(200);
    auto s3 = makeStack(300);
    DejaVuFleet fleet(sim, seconds(10));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    fleet.addService("C", *s3.service, *s3.controller);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    fleet.requestAdaptation("C", w);
    queue.runUntil(minutes(5));

    ASSERT_EQ(fleet.log().size(), 3u);
    // First service profiles immediately; the third waits two slots.
    EXPECT_EQ(fleet.log()[0].queueDelay(), 0);
    EXPECT_EQ(fleet.log()[1].queueDelay(), seconds(10));
    EXPECT_EQ(fleet.log()[2].queueDelay(), seconds(20));
    EXPECT_EQ(fleet.maxQueueDelay(), seconds(20));
    // Every service still classified and deployed.
    for (const auto &entry : fleet.log())
        EXPECT_EQ(entry.decision.kind,
                  DejaVuController::DecisionKind::CacheHit);
}

TEST_F(FleetTest, SpacedRequestsPayNoQueueing)
{
    auto s1 = makeStack(400);
    auto s2 = makeStack(500);
    DejaVuFleet fleet(sim, seconds(10));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);

    const Workload w{cassandraUpdateHeavy(), 3100.0};
    fleet.requestAdaptation("A", w);
    queue.runUntil(minutes(1));
    fleet.requestAdaptation("B", w);
    queue.runUntil(minutes(2));

    ASSERT_EQ(fleet.log().size(), 2u);
    EXPECT_EQ(fleet.log()[1].queueDelay(), 0);
}

TEST_F(FleetTest, TotalAdaptationIncludesQueueDelay)
{
    auto s1 = makeStack(600);
    auto s2 = makeStack(700);
    DejaVuFleet fleet(sim, seconds(10));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    const Workload w{cassandraUpdateHeavy(), 25500.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    queue.runUntil(minutes(5));
    ASSERT_EQ(fleet.log().size(), 2u);
    EXPECT_GT(fleet.log()[1].totalAdaptation(),
              fleet.log()[1].decision.adaptationTime);
}

TEST_F(FleetTest, ShortestJobFirstReordersWaitingRequests)
{
    auto s1 = makeStack(900);
    auto s2 = makeStack(1000);
    auto s3 = makeStack(1100);
    DejaVuFleet fleet(sim, seconds(10),
                      makeSlotScheduler(SlotPolicy::ShortestJobFirst));
    fleet.addService("A", *s1.service, *s1.controller, seconds(30));
    fleet.addService("B", *s2.service, *s2.controller, seconds(20));
    fleet.addService("C", *s3.service, *s3.controller, seconds(5));

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    fleet.requestAdaptation("C", w);
    queue.runUntil(minutes(5));

    // A takes the free host on arrival; C's 5 s job then jumps B's
    // 20 s job.
    ASSERT_EQ(fleet.log().size(), 3u);
    EXPECT_EQ(fleet.log()[0].service, "A");
    EXPECT_EQ(fleet.log()[1].service, "C");
    EXPECT_EQ(fleet.log()[2].service, "B");
    EXPECT_EQ(fleet.log()[0].profilingStartedAt, 0);
    EXPECT_EQ(fleet.log()[1].profilingStartedAt, seconds(30));
    EXPECT_EQ(fleet.log()[2].profilingStartedAt, seconds(35));
    EXPECT_EQ(fleet.log()[1].slotDuration, seconds(5));
    EXPECT_EQ(fleet.slotsGranted(), 3u);
    EXPECT_EQ(fleet.waiting(), 0u);
}

TEST_F(FleetTest, SloDebtFirstGrantsDeepestDebtor)
{
    auto s1 = makeStack(1200);
    auto s2 = makeStack(1300);
    auto s3 = makeStack(1400);
    DejaVuFleet fleet(sim, seconds(10),
                      makeSlotScheduler(SlotPolicy::SloDebtFirst));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    fleet.addService("C", *s3.service, *s3.controller);

    fleet.noteSloViolation("B");
    for (int i = 0; i < 3; ++i)
        fleet.noteSloViolation("C");
    EXPECT_EQ(fleet.sloDebt("C"), 3.0);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    fleet.requestAdaptation("C", w);
    queue.runUntil(minutes(5));

    // A takes the free host on arrival; then C (debt 3) beats B
    // (debt 1).
    ASSERT_EQ(fleet.log().size(), 3u);
    EXPECT_EQ(fleet.log()[0].service, "A");
    EXPECT_EQ(fleet.log()[1].service, "C");
    EXPECT_EQ(fleet.log()[2].service, "B");
    // Granted members' debt is spent.
    EXPECT_EQ(fleet.sloDebt("B"), 0.0);
    EXPECT_EQ(fleet.sloDebt("C"), 0.0);
}

TEST_F(FleetTest, HostPoolRunsSlotsConcurrently)
{
    // M = 2: a three-request burst starts two slots immediately and
    // only the third waits — with never more than two hosts busy.
    auto s1 = makeStack(1500);
    auto s2 = makeStack(1600);
    auto s3 = makeStack(1700);
    DejaVuFleet fleet(sim, seconds(10), nullptr, /*profilingHosts=*/2);
    EXPECT_EQ(fleet.profilingHosts(), 2);
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    fleet.addService("C", *s3.service, *s3.controller);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    EXPECT_EQ(fleet.busyHosts(), 2);
    fleet.requestAdaptation("C", w);
    EXPECT_EQ(fleet.waiting(), 1u);
    queue.runUntil(minutes(5));

    ASSERT_EQ(fleet.log().size(), 3u);
    // A and B profile in parallel on hosts 0 and 1; C takes the
    // first host to free.
    EXPECT_EQ(fleet.log()[0].queueDelay(), 0);
    EXPECT_EQ(fleet.log()[1].queueDelay(), 0);
    EXPECT_EQ(fleet.log()[0].host, 0u);
    EXPECT_EQ(fleet.log()[1].host, 1u);
    EXPECT_EQ(fleet.log()[2].queueDelay(), seconds(10));
    EXPECT_EQ(fleet.maxQueueDelay(), seconds(10));
    EXPECT_EQ(fleet.busyHosts(), 0);

    // Per-host isolation (§3.3): slots on the *same* host never
    // overlap even though the pool runs two at once.
    for (std::size_t i = 0; i < fleet.log().size(); ++i)
        for (std::size_t j = i + 1; j < fleet.log().size(); ++j) {
            const auto &a = fleet.log()[i];
            const auto &b = fleet.log()[j];
            if (a.host != b.host)
                continue;
            const bool disjoint =
                a.profilingStartedAt + a.slotDuration
                    <= b.profilingStartedAt ||
                b.profilingStartedAt + b.slotDuration
                    <= a.profilingStartedAt;
            EXPECT_TRUE(disjoint) << "host " << a.host;
        }
}

TEST_F(FleetTest, PoolSizedToBurstPaysNoQueueing)
{
    // M = 3 hosts absorb a 3-request burst entirely.
    auto s1 = makeStack(1800);
    auto s2 = makeStack(1900);
    auto s3 = makeStack(2000);
    DejaVuFleet fleet(sim, seconds(10), nullptr, /*profilingHosts=*/3);
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    fleet.addService("C", *s3.service, *s3.controller);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);
    fleet.requestAdaptation("B", w);
    fleet.requestAdaptation("C", w);
    EXPECT_EQ(fleet.busyHosts(), 3);
    queue.runUntil(minutes(5));

    ASSERT_EQ(fleet.log().size(), 3u);
    EXPECT_EQ(fleet.maxQueueDelay(), 0);
    // Lowest-free-id placement: hosts 0, 1, 2 in grant order.
    EXPECT_EQ(fleet.log()[0].host, 0u);
    EXPECT_EQ(fleet.log()[1].host, 1u);
    EXPECT_EQ(fleet.log()[2].host, 2u);
}

TEST_F(FleetTest, GrantReleaseInterleavingReusesFreedHosts)
{
    // Staggered arrivals against a 2-host pool: the host freed by an
    // early finisher is re-granted while the other is still busy.
    auto s1 = makeStack(2100);
    auto s2 = makeStack(2200);
    auto s3 = makeStack(2300);
    auto s4 = makeStack(2400);
    DejaVuFleet fleet(sim, seconds(10), nullptr, /*profilingHosts=*/2);
    fleet.addService("A", *s1.service, *s1.controller, seconds(5));
    fleet.addService("B", *s2.service, *s2.controller, seconds(30));
    fleet.addService("C", *s3.service, *s3.controller, seconds(5));
    fleet.addService("D", *s4.service, *s4.controller, seconds(5));

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);  // host 0, 0..5 s
    fleet.requestAdaptation("B", w);  // host 1, 0..30 s
    fleet.requestAdaptation("C", w);  // waits for host 0 at 5 s
    fleet.requestAdaptation("D", w);  // then host 0 again at 10 s
    queue.runUntil(minutes(5));

    ASSERT_EQ(fleet.log().size(), 4u);
    EXPECT_EQ(fleet.log()[2].service, "C");
    EXPECT_EQ(fleet.log()[2].host, 0u);
    EXPECT_EQ(fleet.log()[2].profilingStartedAt, seconds(5));
    EXPECT_EQ(fleet.log()[3].service, "D");
    EXPECT_EQ(fleet.log()[3].host, 0u);
    EXPECT_EQ(fleet.log()[3].profilingStartedAt, seconds(10));
    // B's long slot kept host 1 busy throughout.
    EXPECT_EQ(fleet.log()[1].service, "B");
    EXPECT_EQ(fleet.log()[1].host, 1u);
    EXPECT_EQ(fleet.slotsGranted(), 4u);
}

TEST_F(FleetTest, DuplicateNamesRejected)
{
    auto s1 = makeStack(800);
    DejaVuFleet fleet(sim);
    fleet.addService("A", *s1.service, *s1.controller);
    EXPECT_DEATH(fleet.addService("A", *s1.service, *s1.controller),
                 "duplicate");
}

TEST_F(FleetTest, UnknownServiceIsFatal)
{
    DejaVuFleet fleet(sim);
    EXPECT_EXIT(fleet.requestAdaptation(
                    "ghost", {cassandraUpdateHeavy(), 1.0}),
                ::testing::ExitedWithCode(1), "unknown service");
}

TEST_F(FleetTest, DetachCancelsQueuedWork)
{
    // The implicit-slot-hold fix: a member that detaches while its
    // request waits must leave the queue — its controller never runs
    // and the members behind it close up.
    auto s1 = makeStack(2000);
    auto s2 = makeStack(2100);
    auto s3 = makeStack(2200);
    DejaVuFleet fleet(sim, seconds(10));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);
    fleet.addService("C", *s3.service, *s3.controller);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    fleet.requestAdaptation("A", w);  // granted (host free)
    fleet.requestAdaptation("B", w);  // queued
    fleet.requestAdaptation("C", w);  // queued
    EXPECT_EQ(fleet.waiting(), 2u);

    fleet.detachService("B");
    EXPECT_TRUE(fleet.detached("B"));
    EXPECT_EQ(fleet.waiting(), 1u);
    EXPECT_EQ(fleet.workQueue().stats().cancelledQueued, 1u);
    // Detaching twice is a no-op; requests for a detached member are
    // ignored instead of re-queueing it.
    fleet.detachService("B");
    fleet.requestAdaptation("B", w);
    EXPECT_EQ(fleet.waiting(), 1u);

    queue.runUntil(minutes(5));
    ASSERT_EQ(fleet.log().size(), 2u);
    EXPECT_EQ(fleet.log()[0].service, "A");
    EXPECT_EQ(fleet.log()[1].service, "C");
    // C moved up into B's place: one slot after A's, not two.
    EXPECT_EQ(fleet.log()[1].profilingStartedAt, seconds(10));
    EXPECT_EQ(fleet.slotsGranted(), 2u);
}

TEST_F(FleetTest, DetachCancelsDuringGrant)
{
    // The member detaches after its request was granted a host but
    // before the slot-start event fired: the work must not run, the
    // host must come back, and waiting members take it over.
    auto s1 = makeStack(2300);
    auto s2 = makeStack(2400);
    DejaVuFleet fleet(sim, seconds(10));
    fleet.addService("A", *s1.service, *s1.controller);
    fleet.addService("B", *s2.service, *s2.controller);

    const Workload w{cassandraUpdateHeavy(), 12200.0};
    queue.scheduleAfter(seconds(1), [&] {
        fleet.requestAdaptation("A", w);  // granted at once
        fleet.requestAdaptation("B", w);  // queued behind A
        EXPECT_EQ(fleet.busyHosts(), 1);
        fleet.detachService("A");  // A is granted-but-not-started
    });
    queue.runUntil(minutes(5));

    // A never ran; B got the freed host immediately (same instant).
    ASSERT_EQ(fleet.log().size(), 1u);
    EXPECT_EQ(fleet.log()[0].service, "B");
    EXPECT_EQ(fleet.log()[0].profilingStartedAt, seconds(1));
    EXPECT_EQ(fleet.workQueue().stats().cancelledGranted, 1u);
    EXPECT_EQ(fleet.workQueue().stats().cancelledQueued, 0u);
    EXPECT_EQ(fleet.slotsGranted(), 1u);
    EXPECT_EQ(fleet.busyHosts(), 0);
}

// --------------------------------------------------------------------
// Host-loss fault injection: a property-style sweep of 50 seeded
// random (kill-time, host, outage) schedules against the work queue.
// Whatever the schedule, the busy/free/dead bookkeeping must balance,
// no work item may leak or be double-granted, and nothing may strand
// in Granted state without a live grant.
// --------------------------------------------------------------------

TEST(HostLossProperty, RandomSchedulesNeverLeakOrOrphanWork)
{
    constexpr int kItems = 30;
    constexpr int kKills = 6;
    constexpr int kHosts = 3;

    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        Simulation sim;
        ProfilingWorkQueue wq(sim, nullptr, kHosts);
        Rng rng(seed * 977 + 11);

        // Draw the whole schedule up front so event callbacks spend
        // no randomness (arrival order stays the only variable).
        struct Submission { SimTime at; SimTime duration; };
        std::vector<Submission> submissions;
        for (int i = 0; i < kItems; ++i)
            submissions.push_back(
                {seconds(rng.uniformInt(0, 600)),
                 seconds(rng.uniformInt(5, 30))});
        struct Kill { SimTime at; std::size_t host; SimTime outage; };
        std::vector<Kill> kills;
        for (int k = 0; k < kKills; ++k)
            kills.push_back(
                {seconds(rng.uniformInt(0, 900)),
                 static_cast<std::size_t>(
                     rng.uniformInt(0, kHosts - 1)),
                 seconds(rng.uniformInt(60, 300))});

        std::vector<int> runs(kItems, 0);
        std::vector<int> cancels(kItems, 0);
        for (int i = 0; i < kItems; ++i)
            sim.queue().schedule(submissions[i].at, [&, i] {
                WorkItem item;
                item.kind = WorkKind::Signature;
                item.key = {ServiceKind::KeyValue, i % 4, 0};
                item.owner = static_cast<std::size_t>(i);
                item.duration =
                    submissions[static_cast<std::size_t>(i)].duration;
                wq.submit(
                    item,
                    [&runs, i](const ProfilingWorkQueue::WorkGrant &) {
                        ++runs[static_cast<std::size_t>(i)];
                        return SimTime(0);
                    },
                    [&cancels, i](const WorkItem &,
                                  WorkCancelReason reason) {
                        EXPECT_EQ(reason, WorkCancelReason::HostLost);
                        ++cancels[static_cast<std::size_t>(i)];
                    });
            });

        auto balanced = [&] {
            return wq.pool().busy() + wq.pool().dead()
                + static_cast<int>(wq.pool().freeHosts().size())
                == kHosts;
        };
        std::vector<char> down(kHosts, 0);
        std::uint64_t executedKills = 0;
        for (const auto &kill : kills)
            sim.queue().schedule(kill.at, [&, kill] {
                if (down[kill.host])
                    return;  // already dead: this kill misfires
                down[kill.host] = 1;
                ++executedKills;
                wq.failHost(kill.host);
                EXPECT_EQ(wq.orphanedItems(), 0u);
                EXPECT_TRUE(balanced());
                sim.queue().scheduleAfter(kill.outage, [&, kill] {
                    down[kill.host] = 0;
                    wq.restoreHost(kill.host);
                    EXPECT_EQ(wq.orphanedItems(), 0u);
                    EXPECT_TRUE(balanced());
                });
            });

        sim.queue().runUntil(hours(2));

        // Every host came back and every slot was released.
        EXPECT_EQ(wq.pool().dead(), 0) << "seed " << seed;
        EXPECT_EQ(wq.pool().busy(), 0) << "seed " << seed;
        EXPECT_TRUE(balanced()) << "seed " << seed;
        EXPECT_EQ(wq.orphanedItems(), 0u) << "seed " << seed;
        EXPECT_EQ(wq.submitted(),
                  static_cast<std::size_t>(kItems));

        // No item leaked (ran nor cancelled) or was double-granted.
        std::uint64_t done = 0;
        for (int i = 0; i < kItems; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            EXPECT_EQ(runs[idx] + cancels[idx], 1)
                << "seed " << seed << " item " << i;
            done += static_cast<std::uint64_t>(runs[idx]);
        }
        const auto &stats = wq.stats();
        EXPECT_EQ(stats.signatureSlots, done) << "seed " << seed;
        EXPECT_EQ(stats.hostsFailed, executedKills);
        EXPECT_EQ(stats.hostsRestored, executedKills);
        EXPECT_EQ(stats.cancelledHostLost,
                  static_cast<std::uint64_t>(kItems) - done);
    }
}

} // namespace
} // namespace dejavu
