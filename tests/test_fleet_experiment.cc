/**
 * @file
 * Tests for the multi-service fleet experiment: N services interleave
 * on one shared event queue, adaptation requests serialize on the
 * shared profiling host (§3.3), per-service series are recorded, and
 * runs are deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "experiments/scenario.hh"

namespace dejavu {
namespace {

class FleetExperimentTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

    static std::unique_ptr<FleetStack> makeFleet(int services,
                                                 std::uint64_t seed,
                                                 int days = 3)
    {
        ScenarioOptions options;
        options.seed = seed;
        options.traceName = "messenger";
        options.days = days;
        auto stack = makeCassandraFleet(services, options);
        stack->learnAll();
        return stack;
    }

  private:
    LogLevel _before = LogLevel::Info;
};

TEST_F(FleetExperimentTest, ThreeServicesShareOneQueue)
{
    auto stack = makeFleet(3, 42);
    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 3u);

    for (const auto &sr : results) {
        // Full per-service series, one point per monitor tick
        // (~60/hour for 3 days), time-monotone.
        EXPECT_GT(sr.result.latencyMs.size(), 3u * 24 * 50) << sr.name;
        EXPECT_EQ(sr.result.latencyMs.size(),
                  sr.result.qosPercent.size());
        EXPECT_EQ(sr.result.latencyMs.size(),
                  sr.result.instances.size());
        for (std::size_t i = 1; i < sr.result.latencyMs.size(); ++i)
            ASSERT_GE(sr.result.latencyMs[i].timeHours,
                      sr.result.latencyMs[i - 1].timeHours);
        // Reuse-window adaptations happened and the SLO largely held.
        EXPECT_GT(sr.adaptations, 0) << sr.name;
        EXPECT_LT(sr.result.sloViolationFraction, 0.25) << sr.name;
        EXPECT_GT(sr.result.savingsPercent, 20.0) << sr.name;
    }
}

TEST_F(FleetExperimentTest, ProfilingSlotsNeverOverlap)
{
    // §3.3 Isolation: signatures must not be disturbed by other
    // profiling processes on the shared host — slots are disjoint.
    auto stack = makeFleet(3, 42);
    stack->experiment->run();

    const auto &fleet = stack->experiment->fleet();
    ASSERT_GT(fleet.log().size(), 10u);
    std::vector<SimTime> starts;
    for (const auto &entry : fleet.log())
        starts.push_back(entry.profilingStartedAt);
    std::sort(starts.begin(), starts.end());
    const SimTime slot = fleet.scheduler().slotDuration();
    for (std::size_t i = 1; i < starts.size(); ++i)
        ASSERT_GE(starts[i], starts[i - 1] + slot);
}

TEST_F(FleetExperimentTest, ConcurrentChangesPayQueueingDelay)
{
    // All services change workload at each trace hour, so the 2nd
    // and 3rd in line queue behind the first (10 s slots).
    auto stack = makeFleet(3, 42);
    const auto results = stack->experiment->run();

    const auto &fleet = stack->experiment->fleet();
    EXPECT_GE(fleet.maxQueueDelay(), seconds(20));

    // The queue delay is charged to adaptation time, per service.
    bool someServiceQueued = false;
    for (const auto &sr : results) {
        if (sr.maxQueueDelay > 0) {
            someServiceQueued = true;
            EXPECT_EQ(static_cast<int>(sr.queueDelaySec.count()),
                      sr.adaptations) << sr.name;
        }
    }
    EXPECT_TRUE(someServiceQueued);
    for (const auto &entry : fleet.log())
        ASSERT_EQ(entry.totalAdaptation(),
                  entry.queueDelay() + entry.decision.adaptationTime);
}

TEST_F(FleetExperimentTest, SingleServiceFleetPaysNoQueueing)
{
    auto stack = makeFleet(1, 42);
    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(stack->experiment->fleet().maxQueueDelay(), 0);
}

TEST_F(FleetExperimentTest, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        auto stack = makeFleet(3, 1234);
        return stack->experiment->run();
    };
    const auto a = runOnce();
    const auto b = runOnce();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_DOUBLE_EQ(a[s].result.costDollars,
                         b[s].result.costDollars);
        EXPECT_DOUBLE_EQ(a[s].result.sloViolationFraction,
                         b[s].result.sloViolationFraction);
        EXPECT_EQ(a[s].result.latencyMs.size(),
                  b[s].result.latencyMs.size());
        EXPECT_EQ(a[s].adaptations, b[s].adaptations);
        EXPECT_EQ(a[s].maxQueueDelay, b[s].maxQueueDelay);
    }
}

TEST_F(FleetExperimentTest, ShortHorizonMemberStopsAccruing)
{
    // Members may run different horizons; a member whose trace ends
    // early must not be billed while longer members finish.
    ScenarioOptions options;
    options.seed = 42;
    options.traceName = "messenger";
    options.days = 4;
    auto stack = makeCassandraFleet(2, options);
    // First member stops after 2 days; second runs all 4.
    auto &shortMember = *stack->members.front();
    shortMember.experimentConfig.totalHours = 48;
    auto rebuilt = std::make_unique<FleetExperiment>(*stack->sim);
    for (auto &m : stack->members)
        rebuilt->addService(m->name, *m->service, *m->controller,
                            m->trace, m->experimentConfig);
    stack->experiment = std::move(rebuilt);
    stack->learnAll();

    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 2u);
    const auto &shortResult = results[0].result;
    // 24h reuse window: cost bounded by always-max for that window
    // (phantom accrual past hour 48 would blow through it).
    EXPECT_LE(shortResult.costDollars,
              shortResult.maxCostDollars * 1.001);
    EXPECT_GT(shortResult.savingsPercent, 0.0);
    EXPECT_LE(shortResult.energyKwh, shortResult.maxEnergyKwh);
    // The long member still covers its full 3-day reuse window.
    EXPECT_GT(results[1].result.latencyMs.size(),
              shortResult.latencyMs.size());
}

TEST_F(FleetExperimentTest, ServicesKeepIndependentAllocations)
{
    // Different per-service traces should show up as (at least
    // occasionally) different instance counts at the same instant.
    auto stack = makeFleet(3, 7);
    const auto results = stack->experiment->run();
    int differingTicks = 0;
    const auto &first = results[0].result.instances;
    const auto &second = results[1].result.instances;
    const std::size_t n = std::min(first.size(), second.size());
    for (std::size_t i = 0; i < n; ++i)
        if (first[i].value != second[i].value)
            ++differingTicks;
    EXPECT_GT(differingTicks, 0);
}

} // namespace
} // namespace dejavu
