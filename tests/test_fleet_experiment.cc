/**
 * @file
 * Tests for the multi-service fleet experiment: N services interleave
 * on one shared event queue, adaptation requests serialize on the
 * shared profiling host (§3.3), per-service series are recorded, and
 * runs are deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.hh"
#include "experiments/scenario.hh"

namespace dejavu {
namespace {

class FleetExperimentTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

    static std::unique_ptr<FleetStack> makeFleet(int services,
                                                 std::uint64_t seed,
                                                 int days = 3)
    {
        ScenarioOptions options;
        options.seed = seed;
        options.traceName = "messenger";
        options.days = days;
        auto stack = makeCassandraFleet(services, options);
        stack->learnAll();
        return stack;
    }

  private:
    LogLevel _before = LogLevel::Info;
};

TEST_F(FleetExperimentTest, ThreeServicesShareOneQueue)
{
    auto stack = makeFleet(3, 42);
    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 3u);

    for (const auto &sr : results) {
        // Full per-service series, one point per monitor tick
        // (~60/hour for 3 days), time-monotone.
        EXPECT_GT(sr.result.latencyMs.size(), 3u * 24 * 50) << sr.name;
        EXPECT_EQ(sr.result.latencyMs.size(),
                  sr.result.qosPercent.size());
        EXPECT_EQ(sr.result.latencyMs.size(),
                  sr.result.instances.size());
        for (std::size_t i = 1; i < sr.result.latencyMs.size(); ++i)
            ASSERT_GE(sr.result.latencyMs[i].timeHours,
                      sr.result.latencyMs[i - 1].timeHours);
        // Reuse-window adaptations happened and the SLO largely held.
        EXPECT_GT(sr.adaptations, 0) << sr.name;
        EXPECT_LT(sr.result.sloViolationFraction, 0.25) << sr.name;
        EXPECT_GT(sr.result.savingsPercent, 20.0) << sr.name;
    }
}

TEST_F(FleetExperimentTest, ProfilingSlotsNeverOverlap)
{
    // §3.3 Isolation: signatures must not be disturbed by other
    // profiling processes on the shared host — slots are disjoint.
    auto stack = makeFleet(3, 42);
    stack->experiment->run();

    const auto &fleet = stack->experiment->fleet();
    ASSERT_GT(fleet.log().size(), 10u);
    std::vector<std::pair<SimTime, SimTime>> slots;  // (start, end)
    for (const auto &entry : fleet.log())
        slots.emplace_back(entry.profilingStartedAt,
                           entry.profilingStartedAt
                               + entry.slotDuration);
    std::sort(slots.begin(), slots.end());
    for (std::size_t i = 1; i < slots.size(); ++i)
        ASSERT_GE(slots[i].first, slots[i - 1].second);
}

TEST_F(FleetExperimentTest, ConcurrentChangesPayQueueingDelay)
{
    // All services change workload at each trace hour, so the 2nd
    // and 3rd in line queue behind the first (10 s slots).
    auto stack = makeFleet(3, 42);
    const auto results = stack->experiment->run();

    const auto &fleet = stack->experiment->fleet();
    EXPECT_GE(fleet.maxQueueDelay(), seconds(20));

    // The queue delay is charged to adaptation time, per service.
    bool someServiceQueued = false;
    for (const auto &sr : results) {
        if (sr.maxQueueDelay > 0) {
            someServiceQueued = true;
            EXPECT_EQ(static_cast<int>(sr.queueDelaySec.count()),
                      sr.adaptations) << sr.name;
        }
    }
    EXPECT_TRUE(someServiceQueued);
    for (const auto &entry : fleet.log())
        ASSERT_EQ(entry.totalAdaptation(),
                  entry.queueDelay() + entry.decision.adaptationTime);
}

TEST_F(FleetExperimentTest, SingleServiceFleetPaysNoQueueing)
{
    auto stack = makeFleet(1, 42);
    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(stack->experiment->fleet().maxQueueDelay(), 0);
}

TEST_F(FleetExperimentTest, DeterministicAcrossRuns)
{
    auto runOnce = [] {
        auto stack = makeFleet(3, 1234);
        return stack->experiment->run();
    };
    const auto a = runOnce();
    const auto b = runOnce();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_DOUBLE_EQ(a[s].result.costDollars,
                         b[s].result.costDollars);
        EXPECT_DOUBLE_EQ(a[s].result.sloViolationFraction,
                         b[s].result.sloViolationFraction);
        EXPECT_EQ(a[s].result.latencyMs.size(),
                  b[s].result.latencyMs.size());
        EXPECT_EQ(a[s].adaptations, b[s].adaptations);
        EXPECT_EQ(a[s].maxQueueDelay, b[s].maxQueueDelay);
    }
}

TEST_F(FleetExperimentTest, ShortHorizonMemberStopsAccruing)
{
    // Members may run different horizons; a member whose trace ends
    // early must not be billed while longer members finish.
    ScenarioOptions options;
    options.seed = 42;
    options.traceName = "messenger";
    options.days = 4;
    auto stack = makeCassandraFleet(2, options);
    // First member stops after 2 days; second runs all 4.
    auto &shortMember = *stack->members.front();
    shortMember.experimentConfig.totalHours = 48;
    auto rebuilt = std::make_unique<FleetExperiment>(*stack->sim);
    for (auto &m : stack->members)
        rebuilt->addService(m->name, *m->service, *m->controller,
                            m->trace, m->experimentConfig);
    stack->experiment = std::move(rebuilt);
    stack->learnAll();

    const auto results = stack->experiment->run();
    ASSERT_EQ(results.size(), 2u);
    const auto &shortResult = results[0].result;
    // 24h reuse window: cost bounded by always-max for that window
    // (phantom accrual past hour 48 would blow through it).
    EXPECT_LE(shortResult.costDollars,
              shortResult.maxCostDollars * 1.001);
    EXPECT_GT(shortResult.savingsPercent, 0.0);
    EXPECT_LE(shortResult.energyKwh, shortResult.maxEnergyKwh);
    // The long member still covers its full 3-day reuse window.
    EXPECT_GT(results[1].result.latencyMs.size(),
              shortResult.latencyMs.size());
}

TEST_F(FleetExperimentTest, MixedFleetComposesHeterogeneousMembers)
{
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    auto stack = makeMixedFleet(6, options);
    ASSERT_EQ(stack->members.size(), 6u);

    // KeyValue, SpecWeb, Rubis cycling, each with its kind's SLO and
    // profiling-slot hint.
    const ServiceKind kinds[] = {ServiceKind::KeyValue,
                                 ServiceKind::SpecWeb,
                                 ServiceKind::Rubis};
    const SimTime slots[] = {seconds(10), seconds(15), seconds(20)};
    for (std::size_t i = 0; i < stack->members.size(); ++i) {
        const auto &m = *stack->members[i];
        EXPECT_EQ(m.service->kind(), kinds[i % 3]) << m.name;
        EXPECT_EQ(m.profilingSlot, slots[i % 3]) << m.name;
        EXPECT_EQ(m.service->profilingSlotHint(), slots[i % 3]);
    }
    EXPECT_EQ(stack->members[0]->experimentConfig.slo.kind,
              SloKind::LatencyBound);
    EXPECT_DOUBLE_EQ(
        stack->members[0]->experimentConfig.slo.latencyBoundMs, 60.0);
    EXPECT_EQ(stack->members[1]->experimentConfig.slo.kind,
              SloKind::QosFloor);
    EXPECT_DOUBLE_EQ(
        stack->members[1]->experimentConfig.slo.qosFloorPercent, 95.0);
    EXPECT_DOUBLE_EQ(
        stack->members[2]->experimentConfig.slo.latencyBoundMs, 150.0);
}

TEST_F(FleetExperimentTest, BuilderHonorsPerMemberOverrides)
{
    ScenarioOptions options;
    options.seed = 7;
    options.days = 2;
    FleetMemberSpec custom;
    custom.kind = ServiceKind::KeyValue;
    custom.name = "tenant-x";
    custom.traceName = "hotmail";
    custom.profilingSlot = seconds(3);
    custom.slo = Slo::latency(80.0);
    auto stack = FleetBuilder(options)
                     .add(ServiceKind::Rubis)
                     .add(custom)
                     .build();
    ASSERT_EQ(stack->members.size(), 2u);
    EXPECT_EQ(stack->members[0]->name, "svc-A");
    const auto &m = *stack->members[1];
    EXPECT_EQ(m.name, "tenant-x");
    EXPECT_EQ(m.profilingSlot, seconds(3));
    EXPECT_DOUBLE_EQ(m.experimentConfig.slo.latencyBoundMs, 80.0);
    // Different trace family than the default messenger member.
    EXPECT_EQ(m.trace.hours(), 2u * 24u);
}

TEST_F(FleetExperimentTest, MixedFleetRunsUnderEveryPolicy)
{
    for (const auto &policyName : slotPolicyNames()) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        auto stack = makeMixedFleet(6, options,
                                    slotPolicyFromName(policyName));
        stack->learnAll();
        const auto results = stack->experiment->run();
        ASSERT_EQ(results.size(), 6u) << policyName;
        for (const auto &sr : results)
            EXPECT_GT(sr.adaptations, 0)
                << policyName << "/" << sr.name;

        // §3.3 isolation holds under every policy: heterogeneous
        // slots never overlap.
        const auto &fleet = stack->experiment->fleet();
        std::vector<std::pair<SimTime, SimTime>> slots;
        for (const auto &entry : fleet.log())
            slots.emplace_back(entry.profilingStartedAt,
                               entry.profilingStartedAt
                                   + entry.slotDuration);
        std::sort(slots.begin(), slots.end());
        for (std::size_t i = 1; i < slots.size(); ++i)
            ASSERT_GE(slots[i].first, slots[i - 1].second)
                << policyName;

        const auto summary = stack->experiment->summary();
        EXPECT_EQ(summary.policy, policyName);
        EXPECT_EQ(summary.services, 6);
        EXPECT_EQ(summary.adaptations, fleet.log().size());
        // Interpolated quantiles can differ from the exact max by
        // rounding in the last bits.
        EXPECT_GE(summary.adaptationP95Sec + 1e-9,
                  summary.adaptationP50Sec);
        EXPECT_GE(summary.adaptationMaxSec + 1e-9,
                  summary.adaptationP95Sec);
    }
}

TEST_F(FleetExperimentTest, SjfGrantsShortSlotsFirstUnderContention)
{
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    auto stack = makeMixedFleet(6, options,
                                SlotPolicy::ShortestJobFirst);
    stack->learnAll();
    stack->experiment->run();

    // All services request at each trace hour simultaneously. The
    // first in line takes the free host (arrival order), but every
    // later grant within the burst must pick the shortest waiting
    // slot: start-ordered entries of one burst have non-decreasing
    // durations after the first.
    const auto &log = stack->experiment->fleet().log();
    ASSERT_GT(log.size(), 10u);
    std::map<SimTime, std::vector<std::pair<SimTime, SimTime>>> bursts;
    for (const auto &entry : log)
        bursts[entry.requestedAt].emplace_back(
            entry.profilingStartedAt, entry.slotDuration);
    int checkedBursts = 0;
    for (auto &[requestedAt, grants] : bursts) {
        if (grants.size() < 3)
            continue;
        std::sort(grants.begin(), grants.end());
        for (std::size_t i = 2; i < grants.size(); ++i)
            ASSERT_GE(grants[i].second, grants[i - 1].second)
                << "burst at " << requestedAt;
        ++checkedBursts;
    }
    EXPECT_GT(checkedBursts, 0);
}

TEST_F(FleetExperimentTest, ScalesTo100MixedServices)
{
    for (int n : {10, 50, 100}) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        auto stack = makeMixedFleet(n, options);
        stack->learnAll();
        const auto results = stack->experiment->run();
        ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
        for (const auto &sr : results)
            EXPECT_GT(sr.adaptations, 0) << n << "/" << sr.name;
        const auto summary = stack->experiment->summary();
        EXPECT_EQ(summary.services, n);
        // 24 reuse hours, one request per service per hour.
        EXPECT_EQ(summary.adaptations,
                  static_cast<std::uint64_t>(24 * n));
    }
}

TEST_F(FleetExperimentTest, MoreProfilingHostsShrinkTheTails)
{
    // The ROADMAP's hosts-vs-p95 question in miniature: growing the
    // pool monotonically improves the queue-delay tail, and a pool as
    // large as the burst absorbs it entirely.
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    double lastP95 = -1.0;
    for (int hosts : {1, 2, 6}) {
        auto stack = makeMixedFleet(6, options, SlotPolicy::Fifo,
                                    hosts);
        stack->learnAll();
        stack->experiment->run();
        const auto summary = stack->experiment->summary();
        EXPECT_EQ(summary.hosts, hosts);
        EXPECT_EQ(stack->experiment->fleet().profilingHosts(), hosts);
        if (lastP95 >= 0.0) {
            EXPECT_LE(summary.queueDelayP95Sec, lastP95 + 1e-9)
                << hosts << " hosts";
        }
        lastP95 = summary.queueDelayP95Sec;
        if (hosts >= 6) {
            // 6 hosts for 6 services: every hourly burst fits.
            EXPECT_EQ(stack->experiment->fleet().maxQueueDelay(), 0);
            EXPECT_DOUBLE_EQ(summary.queueDelayMaxSec, 0.0);
        } else {
            EXPECT_GT(summary.queueDelayMaxSec, 0.0) << hosts;
        }
    }
}

TEST_F(FleetExperimentTest, PoolIsolationHoldsPerHost)
{
    // §3.3 isolation generalized to M hosts: same-host slots never
    // overlap, and with M > 1 some slots *do* overlap across hosts.
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    auto stack = makeMixedFleet(9, options, SlotPolicy::Adaptive, 3);
    stack->learnAll();
    stack->experiment->run();

    const auto &log = stack->experiment->fleet().log();
    ASSERT_GT(log.size(), 10u);
    bool crossHostOverlap = false;
    for (std::size_t i = 0; i < log.size(); ++i)
        for (std::size_t j = i + 1; j < log.size(); ++j) {
            const auto &a = log[i];
            const auto &b = log[j];
            ASSERT_LT(a.host, 3u);
            const bool disjoint =
                a.profilingStartedAt + a.slotDuration
                    <= b.profilingStartedAt ||
                b.profilingStartedAt + b.slotDuration
                    <= a.profilingStartedAt;
            if (a.host == b.host) {
                ASSERT_TRUE(disjoint)
                    << "same-host overlap on host " << a.host;
            } else if (!disjoint) {
                crossHostOverlap = true;
            }
        }
    EXPECT_TRUE(crossHostOverlap);
}

TEST_F(FleetExperimentTest, AdaptivePolicyEngagesUnderBurst)
{
    // On a contended mixed fleet the adaptive scheduler must actually
    // switch modes (the hourly burst is deeper than its threshold)
    // and its tails must track the best fixed policy's ballpark.
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    auto stack = makeMixedFleet(12, options, SlotPolicy::Adaptive);
    stack->learnAll();
    stack->experiment->run();

    const auto &sched = dynamic_cast<const AdaptiveSlotScheduler &>(
        stack->experiment->fleet().scheduler());
    // The 12-service hourly burst exceeds sjfQueueDepth = 8, so SJF
    // mode must have fired; an uncontended tail end means FIFO fired
    // too.
    EXPECT_GT(sched.sjfPicks(), 0u);
    EXPECT_GT(sched.fifoPicks(), 0u);
    EXPECT_EQ(stack->experiment->summary().policy, "adaptive");
}

TEST_F(FleetExperimentTest, SharedRepositoryReusesPeerLearnings)
{
    // The shared-repository hypothesis live: in a mixed fleet the
    // first member of each kind tunes its classes, and every later
    // same-kind member's learning probe hits those entries instead
    // of running the tuner.
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    auto stack = makeMixedFleet(6, options, SlotPolicy::Fifo, 1,
                                RepositorySharing::Shared);
    ASSERT_NE(stack->experiment->sharedRepository(), nullptr);
    EXPECT_EQ(stack->experiment->sharing(), RepositorySharing::Shared);

    stack->learnAll();
    const SharedRepository &repo =
        *stack->experiment->sharedRepository();
    // 6 members, 3 kinds: members 4-6 learn after a same-kind peer,
    // so learning-phase cross hits must have happened.
    EXPECT_GT(repo.aggregateCrossHits(), 0u);
    EXPECT_EQ(repo.attachments(), 6);
    // All three kind namespaces are populated and disjoint.
    EXPECT_EQ(repo.kinds().size(), 3u);
    for (const ServiceKind kind :
         {ServiceKind::KeyValue, ServiceKind::SpecWeb,
          ServiceKind::Rubis})
        EXPECT_GT(repo.entries(kind), 0u);

    const auto results = stack->experiment->run();
    for (const auto &sr : results)
        EXPECT_GT(sr.adaptations, 0) << sr.name;
    const auto summary = stack->experiment->summary();
    EXPECT_EQ(summary.sharing, "shared");
    EXPECT_GT(summary.repoCrossHits, 0u);
    // Distinct reuse (tuner runs avoided) is bounded by peer-served
    // reads: repeated lookups of a reused entry only count once.
    EXPECT_GT(summary.repoReusedEntries, 0u);
    EXPECT_LE(summary.repoReusedEntries, summary.repoCrossHits);
    EXPECT_GT(summary.repoLookups, 0u);
}

TEST_F(FleetExperimentTest, SharingRejectsMismatchedSameKindSlos)
{
    // Entries carry no SLO, so sharing between same-kind members
    // with different SLOs would silently serve allocations tuned
    // for the wrong objective — the composition must refuse.
    auto buildMismatched = [] {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        FleetMemberSpec strict;
        strict.kind = ServiceKind::KeyValue;
        strict.slo = Slo::latency(30.0);
        FleetBuilder(options)
            .shareRepository(RepositorySharing::Shared)
            .add(ServiceKind::KeyValue)
            .add(strict)
            .build();
    };
    EXPECT_EXIT(buildMismatched(), ::testing::ExitedWithCode(1),
                "requires one SLO");

    // Mixed trace families within a kind are just as incompatible:
    // canonical class ids only align for comparable distributions.
    auto buildMixedTraces = [] {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        FleetMemberSpec hotmail;
        hotmail.kind = ServiceKind::KeyValue;
        hotmail.traceName = "hotmail";
        FleetBuilder(options)
            .shareRepository(RepositorySharing::Shared)
            .add(ServiceKind::KeyValue)
            .add(hotmail)
            .build();
    };
    EXPECT_EXIT(buildMixedTraces(), ::testing::ExitedWithCode(1),
                "one trace family");

    // The same compositions are fine with private repositories and
    // in isolated mode — the A/B instrument exists to measure
    // questionable compositions, not to forbid them.
    ScenarioOptions options;
    options.seed = 42;
    options.days = 2;
    FleetMemberSpec strict;
    strict.kind = ServiceKind::KeyValue;
    strict.slo = Slo::latency(30.0);
    strict.traceName = "hotmail";
    auto priv = FleetBuilder(options)
                    .add(ServiceKind::KeyValue)
                    .add(strict)
                    .build();
    EXPECT_EQ(priv->members.size(), 2u);
    auto isolated = FleetBuilder(options)
                        .shareRepository(RepositorySharing::Isolated)
                        .add(ServiceKind::KeyValue)
                        .add(strict)
                        .build();
    EXPECT_EQ(isolated->members.size(), 2u);
    EXPECT_EQ(isolated->experiment->sharing(),
              RepositorySharing::Isolated);
}

TEST_F(FleetExperimentTest, SharedHitRateBeatsPrivateBaseline)
{
    // The acceptance bar in miniature: the aggregate repository hit
    // rate under sharing is strictly above the private baseline
    // (learning probes that miss privately are served by peers).
    auto summaryFor = [](RepositorySharing sharing) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        auto stack = makeMixedFleet(6, options, SlotPolicy::Fifo, 1,
                                    sharing);
        stack->learnAll();
        stack->experiment->run();
        return stack->experiment->summary();
    };
    const auto priv = summaryFor(RepositorySharing::Private);
    const auto shared = summaryFor(RepositorySharing::Shared);
    EXPECT_EQ(priv.sharing, "private");
    EXPECT_EQ(priv.repoCrossHits, 0u);
    EXPECT_GT(shared.repoHitRate, priv.repoHitRate);
}

TEST_F(FleetExperimentTest, IsolatedModeMatchesPrivateDecisions)
{
    // Write-through isolation is the A/B instrument: decisions must
    // be bit-identical to private repositories while the shadow
    // table counts what sharing would have served.
    auto runWith = [](RepositorySharing sharing) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        auto stack = makeMixedFleet(6, options, SlotPolicy::Fifo, 1,
                                    sharing);
        stack->learnAll();
        auto results = stack->experiment->run();
        return std::make_pair(std::move(results),
                              stack->experiment->summary());
    };
    const auto [privResults, privSummary] =
        runWith(RepositorySharing::Private);
    const auto [isoResults, isoSummary] =
        runWith(RepositorySharing::Isolated);

    ASSERT_EQ(privResults.size(), isoResults.size());
    for (std::size_t i = 0; i < privResults.size(); ++i) {
        EXPECT_DOUBLE_EQ(privResults[i].result.costDollars,
                         isoResults[i].result.costDollars);
        EXPECT_DOUBLE_EQ(privResults[i].result.sloViolationFraction,
                         isoResults[i].result.sloViolationFraction);
        EXPECT_EQ(privResults[i].adaptations,
                  isoResults[i].adaptations);
    }
    EXPECT_EQ(privSummary.repoLookups, isoSummary.repoLookups);
    EXPECT_EQ(privSummary.repoHits, isoSummary.repoHits);
    EXPECT_EQ(isoSummary.sharing, "isolated");
    // The counterfactual: sharing would have served some misses.
    EXPECT_GT(isoSummary.repoWouldHaveHits, 0u);
    EXPECT_EQ(privSummary.repoWouldHaveHits, 0u);
}

TEST_F(FleetExperimentTest, WorkQueueMatchesLegacyWhenFeaturesIdle)
{
    // The faithful-rebase property: with interference detection off
    // (no §3.6 tuner sequences can arise) and private repositories
    // (no coalescing, no reuse cancellation), the work-queue routing
    // has nothing to do differently — runs must match the legacy
    // path bit for bit.
    auto runWith = [](ProfilingWorkMode mode) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        options.interferenceDetection = false;
        auto stack = makeMixedFleet(6, options, SlotPolicy::Fifo, 1,
                                    RepositorySharing::Private, mode);
        stack->learnAll();
        auto results = stack->experiment->run();
        return std::make_pair(std::move(results),
                              stack->experiment->summary());
    };
    const auto [legacyResults, legacySummary] =
        runWith(ProfilingWorkMode::Legacy);
    const auto [wqResults, wqSummary] =
        runWith(ProfilingWorkMode::WorkQueue);

    EXPECT_EQ(legacySummary.workMode, "legacy");
    EXPECT_EQ(wqSummary.workMode, "wq");
    EXPECT_EQ(legacySummary.adaptations, wqSummary.adaptations);
    EXPECT_EQ(legacySummary.signatureSlots, wqSummary.signatureSlots);
    EXPECT_EQ(wqSummary.tunerSlots, 0u);
    EXPECT_EQ(wqSummary.coalescedSignatures, 0u);
    EXPECT_DOUBLE_EQ(legacySummary.queueDelayP95Sec,
                     wqSummary.queueDelayP95Sec);
    EXPECT_DOUBLE_EQ(legacySummary.adaptationP95Sec,
                     wqSummary.adaptationP95Sec);
    EXPECT_EQ(legacySummary.repoLookups, wqSummary.repoLookups);
    EXPECT_EQ(legacySummary.repoHits, wqSummary.repoHits);
    ASSERT_EQ(legacyResults.size(), wqResults.size());
    for (std::size_t i = 0; i < legacyResults.size(); ++i) {
        EXPECT_DOUBLE_EQ(legacyResults[i].result.costDollars,
                         wqResults[i].result.costDollars);
        EXPECT_EQ(legacyResults[i].adaptations,
                  wqResults[i].adaptations);
        EXPECT_EQ(legacyResults[i].maxQueueDelay,
                  wqResults[i].maxQueueDelay);
    }
}

TEST_F(FleetExperimentTest, CoalescingCollapsesSharedSignatureWork)
{
    // The tentpole claim in miniature: under the work-queue model
    // with a shared repository, same-class signature collections of
    // the hourly burst merge into one slot each, so shared-mode slot
    // demand drops measurably below private-mode while every member
    // still completes every adaptation.
    auto summaryFor = [](RepositorySharing sharing) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        auto stack = makeMixedFleet(9, options, SlotPolicy::Fifo, 1,
                                    sharing,
                                    ProfilingWorkMode::WorkQueue);
        stack->learnAll();
        stack->experiment->run();
        return stack->experiment->summary();
    };
    const auto shared = summaryFor(RepositorySharing::Shared);
    const auto priv = summaryFor(RepositorySharing::Private);

    EXPECT_GT(shared.coalescedSignatures, 0u);
    EXPECT_EQ(priv.coalescedSignatures, 0u);
    // Every coalesced collection is a slot the pool did not grant.
    EXPECT_EQ(shared.signatureSlots + shared.coalescedSignatures,
              priv.signatureSlots);
    EXPECT_LT(shared.signatureSlots + shared.tunerSlots,
              priv.signatureSlots + priv.tunerSlots);
    // Less demand, same pool: the queue tail shrinks.
    EXPECT_LT(shared.queueDelayP95Sec, priv.queueDelayP95Sec);
    // Fan-out members still complete their adaptations (one per
    // member per reuse hour, plus any tuner completions).
    EXPECT_GE(shared.adaptations,
              static_cast<std::uint64_t>(9 * 24));
}

TEST_F(FleetExperimentTest, InterferenceMakesTunerRunsPoolWork)
{
    // With co-located tenant pressure injected, §3.6 tuner sequences
    // fire — under the work-queue model they consume pool slots, and
    // a shared repository avoids most of them (peers reuse each
    // other's interference tunings).
    auto summaryFor = [](RepositorySharing sharing) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        options.interference = true;
        auto stack = makeMixedFleet(9, options, SlotPolicy::Fifo, 1,
                                    sharing,
                                    ProfilingWorkMode::WorkQueue);
        stack->learnAll();
        stack->startInjectors();
        stack->experiment->run();
        return stack->experiment->summary();
    };
    const auto priv = summaryFor(RepositorySharing::Private);
    const auto shared = summaryFor(RepositorySharing::Shared);
    EXPECT_GT(priv.tunerSlots, 0u);
    EXPECT_LT(shared.tunerSlots, priv.tunerSlots);
    EXPECT_GT(shared.repoReusedEntries, 0u);
}

TEST_F(FleetExperimentTest, JitteredArrivalsSpreadTheBurst)
{
    // The ROADMAP's de-synchronization question: offsetting each
    // member's trace hours spreads the hourly burst, so the pool
    // queue (and with it the adaptation tail) collapses even at
    // M = 1 — and the offsets are deterministic per (seed, member).
    auto buildWith = [](SimTime spread) {
        ScenarioOptions options;
        options.seed = 42;
        options.days = 2;
        FleetBuilder builder(options);
        builder.slotPolicy(SlotPolicy::Fifo);
        if (spread > 0)
            builder.arrivalJitter(7, spread);
        for (int i = 0; i < 9; ++i)
            builder.add(i % 2 == 0 ? ServiceKind::KeyValue
                                   : ServiceKind::Rubis);
        auto stack = builder.build();
        stack->learnAll();
        return stack;
    };

    auto sync = buildWith(0);
    sync->experiment->run();
    const auto syncSummary = sync->experiment->summary();

    auto jittered = buildWith(minutes(45));
    // Deterministic, spread-out offsets within the hour.
    bool anyOffset = false;
    for (std::size_t i = 0; i < jittered->members.size(); ++i) {
        const SimTime offset = jittered->members[i]->arrivalOffset;
        EXPECT_GE(offset, 0);
        EXPECT_LT(offset, minutes(45));
        anyOffset = anyOffset || offset > 0;
    }
    EXPECT_TRUE(anyOffset);
    {
        auto again = buildWith(minutes(45));
        for (std::size_t i = 0; i < jittered->members.size(); ++i)
            EXPECT_EQ(jittered->members[i]->arrivalOffset,
                      again->members[i]->arrivalOffset);
    }
    jittered->experiment->run();
    const auto jitSummary = jittered->experiment->summary();

    // Same work completed, radically thinner queue tail.
    EXPECT_EQ(jitSummary.adaptations, syncSummary.adaptations);
    EXPECT_GT(syncSummary.queueDelayP95Sec, 0.0);
    EXPECT_LT(jitSummary.queueDelayP95Sec,
              syncSummary.queueDelayP95Sec);
    // Members' changes really fire off the hour boundary.
    bool offHourArrival = false;
    for (const auto &entry : jittered->experiment->fleet().log())
        offHourArrival = offHourArrival
            || entry.requestedAt % static_cast<SimTime>(kHour) != 0;
    EXPECT_TRUE(offHourArrival);
}

TEST_F(FleetExperimentTest, ServicesKeepIndependentAllocations)
{
    // Different per-service traces should show up as (at least
    // occasionally) different instance counts at the same instant.
    auto stack = makeFleet(3, 7);
    const auto results = stack->experiment->run();
    int differingTicks = 0;
    const auto &first = results[0].result.instances;
    const auto &second = results[1].result.instances;
    const std::size_t n = std::min(first.size(), second.size());
    for (std::size_t i = 0; i < n; ++i)
        if (first[i].value != second[i].value)
            ++differingTicks;
    EXPECT_GT(differingTicks, 0);
}

} // namespace
} // namespace dejavu
