/**
 * @file
 * Tests for the fleet-level batched sampling engine (FleetSampler)
 * and the parallel learning split: exact equivalence with the legacy
 * per-service MonitorProbe path, lazy mid-slot detach, jittered chain
 * offsets, and bit-identical learnAll() at any thread count.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "experiments/runner.hh"
#include "experiments/sampler.hh"
#include "experiments/scenario.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/simulation.hh"

namespace dejavu {
namespace {

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

  private:
    LogLevel _before = LogLevel::Info;
};

using SamplerTest = QuietLogs;

/** One observed sample: when it fired and for which trace hour. */
struct Observed
{
    SimTime at;
    int hour;

    bool operator==(const Observed &o) const
    { return at == o.at && hour == o.hour; }
};

/** A minimal per-service stack driven by a real trace. */
struct ServiceHarness
{
    std::unique_ptr<Cluster> cluster;
    std::unique_ptr<KeyValueService> service;
    std::unique_ptr<TraceDriver> driver;

    ServiceHarness(Simulation &sim, const LoadTrace &trace,
                   std::uint64_t seed, int hours,
                   SimTime startOffset = 0)
    {
        cluster = std::make_unique<Cluster>(sim.queue(),
                                            Cluster::Config{});
        service = std::make_unique<KeyValueService>(
            sim.queue(), *cluster, Rng(seed));
        driver = std::make_unique<TraceDriver>(
            sim, *service, trace,
            TraceDriver::Config{hours, 20000.0, startOffset});
    }
};

/** Record every sample a feed delivers. */
std::vector<Observed> *
observe(Simulation &sim, SampleFeed &feed)
{
    auto *seen = new std::vector<Observed>;
    feed.addListener([&sim, seen](int hour, const Service::PerfSample &) {
        seen->push_back({sim.queue().now(), hour});
    });
    return seen;
}

TEST_F(SamplerTest, BatchedMatchesLegacyProbeExactly)
{
    // The equivalence claim at unit scale: the same two services under
    // the same trace deliver the identical (time, hour) sample
    // sequence whether sampled by one FleetSampler or by dedicated
    // MonitorProbe actors.
    const LoadTrace trace = scenarioTrace("messenger", 1, 42);
    const MonitorProbe::Config cadence{minutes(1), seconds(30)};

    Simulation batchedSim;
    ServiceHarness ba(batchedSim, trace, 7, 2);
    ServiceHarness bb(batchedSim, trace, 9, 2);
    FleetSampler sampler(batchedSim);
    sampler.reserveServices(2);
    auto &feedA = sampler.registerService(*ba.service, *ba.driver,
                                          cadence);
    auto &feedB = sampler.registerService(*bb.service, *bb.driver,
                                          cadence);
    std::unique_ptr<std::vector<Observed>> batchedA(
        observe(batchedSim, feedA));
    std::unique_ptr<std::vector<Observed>> batchedB(
        observe(batchedSim, feedB));
    batchedSim.runUntil(hours(3));

    Simulation legacySim;
    ServiceHarness la(legacySim, trace, 7, 2);
    ServiceHarness lb(legacySim, trace, 9, 2);
    MonitorProbe probeA(legacySim, *la.service, *la.driver, cadence);
    MonitorProbe probeB(legacySim, *lb.service, *lb.driver, cadence);
    std::unique_ptr<std::vector<Observed>> legacyA(
        observe(legacySim, probeA));
    std::unique_ptr<std::vector<Observed>> legacyB(
        observe(legacySim, probeB));
    legacySim.runUntil(hours(3));

    ASSERT_FALSE(batchedA->empty());
    EXPECT_EQ(*batchedA, *legacyA);
    EXPECT_EQ(*batchedB, *legacyB);
    EXPECT_EQ(feedA.samplesTaken(), probeA.samplesTaken());
    EXPECT_EQ(sampler.samplesTaken(),
              probeA.samplesTaken() + probeB.samplesTaken());
    EXPECT_EQ(sampler.services(), 2u);
    EXPECT_EQ(sampler.liveServices(), 2u);
}

TEST_F(SamplerTest, DetachMidSlotIsLazyAndLocal)
{
    // Member A detaches at t=10s, *after* its first chain tick was
    // already bucketed for t=30s: the drain must skip the stale index
    // without disturbing B, and A must never sample again.
    const LoadTrace trace = scenarioTrace("messenger", 1, 42);
    const MonitorProbe::Config cadence{minutes(1), seconds(30)};

    Simulation sim;
    ServiceHarness a(sim, trace, 7, 2);
    ServiceHarness b(sim, trace, 9, 2);
    FleetSampler sampler(sim);
    auto &feedA = sampler.registerService(*a.service, *a.driver,
                                          cadence);
    auto &feedB = sampler.registerService(*b.service, *b.driver,
                                          cadence);

    sim.queue().schedule(seconds(10), [&] { feedA.detach(); });
    // B detaches mid-run, between two of its own ticks; its count
    // must freeze at whatever it was at that instant.
    std::uint64_t samplesAtDetach = 0;
    sim.queue().schedule(minutes(30) + seconds(10), [&] {
        samplesAtDetach = feedB.samplesTaken();
        feedB.detach();
    });
    sim.runUntil(hours(2));

    EXPECT_EQ(feedA.samplesTaken(), 0u);
    EXPECT_GT(samplesAtDetach, 0u);
    EXPECT_EQ(feedB.samplesTaken(), samplesAtDetach);
    EXPECT_EQ(sampler.samplesTaken(), feedB.samplesTaken());
    EXPECT_EQ(sampler.services(), 2u);
    EXPECT_EQ(sampler.liveServices(), 0u);
    // Detaching twice is a no-op.
    feedA.detach();
    EXPECT_EQ(sampler.liveServices(), 0u);
}

TEST_F(SamplerTest, JitteredOffsetsKeepFullSamplingDensity)
{
    // A member whose driver fires at hour boundaries plus an offset
    // must sample on its own shifted timeline with undiminished
    // density: same count as an unjittered twin, every instant
    // shifted by exactly the offset.
    const LoadTrace trace = scenarioTrace("messenger", 1, 42);
    const MonitorProbe::Config cadence{minutes(1), seconds(30)};
    const SimTime offset = minutes(7) + seconds(11);

    Simulation sim;
    ServiceHarness plain(sim, trace, 7, 2);
    ServiceHarness jittered(sim, trace, 7, 2, offset);
    FleetSampler sampler(sim);
    auto &plainFeed = sampler.registerService(
        *plain.service, *plain.driver, cadence);
    auto &jitteredFeed = sampler.registerService(
        *jittered.service, *jittered.driver, cadence);
    std::unique_ptr<std::vector<Observed>> plainSeen(
        observe(sim, plainFeed));
    std::unique_ptr<std::vector<Observed>> jitteredSeen(
        observe(sim, jitteredFeed));
    sim.runUntil(hours(3));

    ASSERT_FALSE(plainSeen->empty());
    ASSERT_EQ(jitteredSeen->size(), plainSeen->size());
    for (std::size_t i = 0; i < plainSeen->size(); ++i) {
        EXPECT_EQ((*jitteredSeen)[i].at,
                  (*plainSeen)[i].at + offset);
        EXPECT_EQ((*jitteredSeen)[i].hour, (*plainSeen)[i].hour);
    }
}

using SamplerIntegration = QuietLogs;

TEST_F(SamplerIntegration, BatchedDigestsMatchLegacyAt100Services)
{
    // The ISSUE acceptance bar: at 100 services the batched sampler's
    // fleet digest must be byte-identical to the legacy per-probe
    // path — modulo the scenario-name column — and stay byte-identical
    // across 1, 4 and 8 runner threads.
    const auto cells = ExperimentRunner::grid(
        {"fleet-mixed-100-h4", "fleet-mixed-100-h4-probes"},
        {"fifo"}, {42});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));

    // Row tails (everything after the scenario name) must match:
    // the two modes produce the same adaptations, tails and repo
    // statistics down to the last digit.
    auto tailOf = [&](const std::string &scenario) {
        const std::string prefix = scenario + ",";
        const auto at = digest1.find("\n" + prefix);
        EXPECT_NE(at, std::string::npos) << scenario;
        const auto begin = at + 1 + prefix.size();
        return digest1.substr(begin,
                              digest1.find('\n', begin) - begin);
    };
    const std::string batched = tailOf("fleet-mixed-100-h4");
    const std::string legacy = tailOf("fleet-mixed-100-h4-probes");
    EXPECT_FALSE(batched.empty());
    EXPECT_EQ(batched, legacy);
}

TEST_F(SamplerIntegration, ParallelLearningBitIdentical)
{
    // learnAll(threads) must be bit-identical at any thread count,
    // including the hardest composition: a shared repository (whose
    // probe/tuner/store half is order-sensitive) under the work-queue
    // routing. The member-local prepares run on the pool; the shared
    // half replays sequentially in member order.
    auto digestFor = [&](int threads) {
        ScenarioOptions opt;
        opt.seed = 42;
        opt.days = 2;
        auto stack = makeMixedFleet(6, opt, SlotPolicy::Fifo, 2,
                                    RepositorySharing::Shared,
                                    ProfilingWorkMode::WorkQueue);
        stack->learnAll(threads);
        stack->experiment->run();
        std::vector<FleetCellResult> rows;
        rows.push_back({{"fleet-mixed-6-shared-wq", "fifo", 42},
                        stack->experiment->summary()});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestFor(1);
    EXPECT_EQ(digest1, digestFor(4));
    EXPECT_EQ(digest1, digestFor(8));
}

} // namespace
} // namespace dejavu
