/**
 * @file
 * Unit tests for instance types and allocations (sim/instance_type.hh,
 * sim/allocation.hh).
 */

#include <gtest/gtest.h>

#include "sim/allocation.hh"
#include "sim/instance_type.hh"

namespace dejavu {
namespace {

TEST(InstanceType, PaperPricing)
{
    // §4.5: "$0.34/hour for a large instance on EC2 and $0.68/hour
    // for extra large as of July 2011".
    EXPECT_DOUBLE_EQ(instanceSpec(InstanceType::Large).pricePerHour,
                     0.34);
    EXPECT_DOUBLE_EQ(instanceSpec(InstanceType::XLarge).pricePerHour,
                     0.68);
}

TEST(InstanceType, CapacityOrdering)
{
    EXPECT_LT(instanceSpec(InstanceType::Small).computeUnits,
              instanceSpec(InstanceType::Large).computeUnits);
    EXPECT_LT(instanceSpec(InstanceType::Large).computeUnits,
              instanceSpec(InstanceType::XLarge).computeUnits);
    // XL = 2x L in both ECU and price (cost-neutral per ECU).
    EXPECT_DOUBLE_EQ(instanceSpec(InstanceType::XLarge).computeUnits,
                     2 * instanceSpec(InstanceType::Large).computeUnits);
}

TEST(InstanceType, ShortNames)
{
    EXPECT_EQ(shortName(InstanceType::Small), "S");
    EXPECT_EQ(shortName(InstanceType::Large), "L");
    EXPECT_EQ(shortName(InstanceType::XLarge), "XL");
}

TEST(InstanceType, ParseAcceptsVariants)
{
    EXPECT_EQ(parseInstanceType("large"), InstanceType::Large);
    EXPECT_EQ(parseInstanceType("LARGE"), InstanceType::Large);
    EXPECT_EQ(parseInstanceType("m1.xlarge"), InstanceType::XLarge);
    EXPECT_EQ(parseInstanceType("XL"), InstanceType::XLarge);
    EXPECT_EQ(parseInstanceType("s"), InstanceType::Small);
}

TEST(InstanceTypeDeath, ParseRejectsUnknown)
{
    EXPECT_EXIT(parseInstanceType("quantum"),
                ::testing::ExitedWithCode(1), "unknown instance type");
}

TEST(Allocation, ComputeUnitsAndCost)
{
    ResourceAllocation a{4, InstanceType::Large};
    EXPECT_DOUBLE_EQ(a.computeUnits(), 16.0);
    EXPECT_DOUBLE_EQ(a.dollarsPerHour(), 4 * 0.34);
    EXPECT_EQ(a.toString(), "4xL");
}

TEST(Allocation, Equality)
{
    ResourceAllocation a{2, InstanceType::Large};
    ResourceAllocation b{2, InstanceType::Large};
    ResourceAllocation c{2, InstanceType::XLarge};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Allocation, CapacityOrdering)
{
    ResourceAllocation small{1, InstanceType::Large};
    ResourceAllocation big{3, InstanceType::Large};
    ResourceAllocation xl{2, InstanceType::XLarge};  // 16 ECU
    EXPECT_TRUE(lessCapacity(small, big));
    EXPECT_FALSE(lessCapacity(big, small));
    EXPECT_TRUE(lessCapacity(big, xl));  // 12 < 16
}

TEST(Allocation, TieBrokenByCost)
{
    // 2xXL and 4xL have equal ECU (16) and equal cost here; ordering
    // must at least be consistent (not both less-than).
    ResourceAllocation a{4, InstanceType::Large};
    ResourceAllocation b{2, InstanceType::XLarge};
    EXPECT_FALSE(lessCapacity(a, b) && lessCapacity(b, a));
}

} // namespace
} // namespace dejavu
