/**
 * @file
 * Unit tests for interference index estimation
 * (core/interference_estimator.hh).
 */

#include <gtest/gtest.h>

#include "core/interference_estimator.hh"

namespace dejavu {
namespace {

TEST(InterferenceEstimator, LatencyIndexConvention)
{
    // §3.6: production / isolation; > 1 means production is worse.
    EXPECT_DOUBLE_EQ(InterferenceEstimator::latencyIndex(90.0, 60.0),
                     1.5);
    EXPECT_DOUBLE_EQ(InterferenceEstimator::latencyIndex(60.0, 60.0),
                     1.0);
}

TEST(InterferenceEstimator, QosIndexInverted)
{
    // Lower production QoS = more interference = bigger index.
    EXPECT_GT(InterferenceEstimator::qosIndex(90.0, 99.0), 1.0);
    EXPECT_DOUBLE_EQ(InterferenceEstimator::qosIndex(99.0, 99.0), 1.0);
}

TEST(InterferenceEstimator, BucketZeroWithinTolerance)
{
    InterferenceEstimator est;
    EXPECT_EQ(est.bucketOf(1.0), 0);
    EXPECT_EQ(est.bucketOf(1.1), 0);   // tolerance 0.2
    EXPECT_EQ(est.bucketOf(0.9), 0);   // faster than isolation
}

TEST(InterferenceEstimator, BucketsQuantizeIndex)
{
    InterferenceEstimator est;  // tolerance .2, width .25
    EXPECT_EQ(est.bucketOf(1.25), 1);
    EXPECT_EQ(est.bucketOf(1.44), 1);
    EXPECT_EQ(est.bucketOf(1.50), 2);
    EXPECT_EQ(est.bucketOf(2.00), 4);
}

TEST(InterferenceEstimator, ExtremeIndicesShareTopBucket)
{
    // Deep saturation produces numerically unbounded ratios; they
    // must not each mint a fresh repository key.
    InterferenceEstimator est;
    const int top = est.config().maxBucket;
    EXPECT_EQ(est.bucketOf(10.0), top);
    EXPECT_EQ(est.bucketOf(50.0), top);
    EXPECT_LE(est.bucketOf(3.0), top);
}

TEST(InterferenceEstimator, BucketFloorsAreMonotone)
{
    InterferenceEstimator est;
    double prev = 0.0;
    for (int b = 0; b < 6; ++b) {
        EXPECT_GT(est.bucketFloor(b), prev - 1e-12);
        prev = est.bucketFloor(b);
    }
    EXPECT_DOUBLE_EQ(est.bucketFloor(0), 1.0);
}

TEST(InterferenceEstimator, BucketOfFloorIsThatBucket)
{
    InterferenceEstimator est;
    for (int b = 1; b < 5; ++b)
        EXPECT_EQ(est.bucketOf(est.bucketFloor(b) + 1e-9), b);
}

TEST(InterferenceEstimator, CapacityLossGrowsWithBucket)
{
    InterferenceEstimator est;
    EXPECT_DOUBLE_EQ(est.assumedCapacityLoss(0), 0.0);
    double prev = 0.0;
    for (int b = 1; b < 6; ++b) {
        const double loss = est.assumedCapacityLoss(b);
        EXPECT_GT(loss, prev);
        EXPECT_LE(loss, 0.6);  // clamped
        prev = loss;
    }
}

TEST(InterferenceEstimator, ConservativePercentile)
{
    InterferenceEstimator::Config cfg;
    cfg.percentile = 0.95;
    InterferenceEstimator est(cfg);
    std::vector<double> probes;
    for (int i = 1; i <= 100; ++i)
        probes.push_back(1.0 + i * 0.01);
    const double idx = est.conservativeIndex(probes);
    // The 95th percentile sits near the top of the distribution:
    // "chooses an instance at which interference is higher than in
    // X% of the probed instances" (§3.6).
    EXPECT_GT(idx, 1.90);
    EXPECT_LT(idx, 2.00);
}

TEST(InterferenceEstimator, ConservativeSingleProbe)
{
    InterferenceEstimator est;
    EXPECT_DOUBLE_EQ(est.conservativeIndex({1.4}), 1.4);
}

TEST(InterferenceEstimatorDeath, BadInputs)
{
    InterferenceEstimator est;
    EXPECT_DEATH(est.bucketOf(0.0), "positive");
    EXPECT_DEATH(InterferenceEstimator::latencyIndex(-1.0, 1.0),
                 "positive");
    EXPECT_DEATH(est.conservativeIndex({}), "probes");
}

} // namespace
} // namespace dejavu
