/**
 * @file
 * Unit tests for interference injection (sim/interference.hh) and the
 * multi-level §3.6 bucket machinery it feeds: exact bucket-boundary
 * classification and the coalescer's never-merge-across-buckets rule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/interference_estimator.hh"
#include "profiling/coalescer.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/interference.hh"

namespace dejavu {
namespace {

TEST(InterferenceInjector, AppliesConfiguredLevels)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.10, 0.20};
    cfg.contentionMultiplier = 1.0;  // raw occupancy for this test
    InterferenceInjector inj(q, c, cfg, Rng(5));
    inj.start();
    for (int i = 0; i < c.poolSize(); ++i) {
        const double level = c.vm(i).interference();
        EXPECT_TRUE(level == 0.10 || level == 0.20)
            << "vm " << i << " has " << level;
    }
}

TEST(InterferenceInjector, ContentionAmplifiesOccupancy)
{
    // A 10-20% co-located occupancy costs the victim more than its
    // raw CPU share (cache/memory-bandwidth contention, [44]).
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.20};
    cfg.contentionMultiplier = 1.8;
    InterferenceInjector inj(q, c, cfg, Rng(5));
    inj.applyOnce();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_NEAR(c.vm(i).interference(), 0.36, 1e-12);
}

TEST(InterferenceInjector, PeriodicReassignmentChangesLevels)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.10, 0.20};
    cfg.period = hours(1);
    InterferenceInjector inj(q, c, cfg, Rng(7));
    inj.start();
    std::vector<double> initial;
    for (int i = 0; i < c.poolSize(); ++i)
        initial.push_back(c.vm(i).interference());
    q.runUntil(hours(3) + minutes(1));
    int changed = 0;
    for (int i = 0; i < c.poolSize(); ++i)
        if (c.vm(i).interference() !=
            initial[static_cast<std::size_t>(i)])
            ++changed;
    EXPECT_GT(changed, 0);  // with 10 VMs and 3 rounds, some flip
}

TEST(InterferenceInjector, StopClearsInterference)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    InterferenceInjector inj(q, c, cfg, Rng(9));
    inj.start();
    inj.stop();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
    // Pending reassignment events must be inert after stop.
    q.runUntil(hours(5));
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
}

TEST(InterferenceInjector, DisabledInjectorDoesNothing)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.enabled = false;
    InterferenceInjector inj(q, c, cfg, Rng(11));
    inj.start();
    q.runUntil(hours(3));
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
}

TEST(InterferenceInjector, SingleLevelAppliesUniformly)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.15};
    cfg.contentionMultiplier = 1.0;
    InterferenceInjector inj(q, c, cfg, Rng(13));
    inj.applyOnce();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.15);
}

// --------------------------------------------------------------------
// Multi-level §3.6 buckets: exact boundary classification.
// --------------------------------------------------------------------

TEST(InterferenceBuckets, ToleranceEdgeBelongsToBucketZero)
{
    InterferenceEstimator est;  // width 0.25, tolerance 0.20, max 8
    const double tolEdge = 1.0 + est.config().tolerance;
    EXPECT_EQ(est.bucketOf(1.0), 0);
    // An index exactly at the tolerance threshold still counts as
    // "no interference"; one ulp above it does not.
    EXPECT_EQ(est.bucketOf(tolEdge), 0);
    EXPECT_EQ(est.bucketOf(
                  std::nextafter(tolEdge, 2.0)), 1);
}

TEST(InterferenceBuckets, EveryBucketFloorSplitsDeterministically)
{
    InterferenceEstimator est;
    const double eps = 1e-9;  // swamps the floors' representation error
    for (int b = 1; b <= est.config().maxBucket; ++b) {
        const double floor = est.bucketFloor(b);
        // Just below a bucket's floor classifies one bucket lower;
        // just above classifies into it — no boundary ever wobbles.
        EXPECT_EQ(est.bucketOf(floor - eps), b - 1) << "bucket " << b;
        EXPECT_EQ(est.bucketOf(floor + eps), b) << "bucket " << b;
        // Same input, same answer, every time (the §3.6 key must be
        // reproducible across the classify and repository paths).
        EXPECT_EQ(est.bucketOf(floor), est.bucketOf(floor));
    }
}

TEST(InterferenceBuckets, MonotoneAndClampedAtMaxBucket)
{
    InterferenceEstimator est;
    int last = 0;
    for (int i = 0; i <= 400; ++i) {
        const int b = est.bucketOf(1.0 + i * 0.01);
        EXPECT_GE(b, last);
        EXPECT_LE(b, est.config().maxBucket);
        last = b;
    }
    EXPECT_EQ(last, est.config().maxBucket);
    EXPECT_EQ(est.bucketOf(1e9), est.config().maxBucket);
}

// --------------------------------------------------------------------
// Bucket transitions never merge in the coalescer: a bucket-2
// signature is collected under different co-location pressure than a
// bucket-0 one, so they must not share a slot.
// --------------------------------------------------------------------

TEST(InterferenceBuckets, CoalescerNeverMergesAcrossBuckets)
{
    Coalescer co(true);
    WorkItem leader;
    leader.id = 1;
    leader.kind = WorkKind::Signature;
    leader.key = {ServiceKind::KeyValue, 3, 0};
    ASSERT_TRUE(co.eligible(leader));
    co.open(leader);

    // Same kind and class, every other bucket: no open batch matches.
    for (int bucket = 1; bucket <= 8; ++bucket) {
        const WorkKey other{ServiceKind::KeyValue, 3, bucket};
        EXPECT_EQ(co.leaderFor(other), kInvalidWorkItem)
            << "bucket " << bucket;
    }
    // The exact key still finds its batch.
    EXPECT_EQ(co.leaderFor(leader.key), leader.id);

    // A same-class item that escalated to bucket 2 opens a *new*
    // batch; both stay open side by side.
    WorkItem escalated;
    escalated.id = 2;
    escalated.kind = WorkKind::Signature;
    escalated.key = {ServiceKind::KeyValue, 3, 2};
    ASSERT_TRUE(co.eligible(escalated));
    co.open(escalated);
    EXPECT_EQ(co.open(), 2u);
    EXPECT_EQ(co.leaderFor(leader.key), leader.id);
    EXPECT_EQ(co.leaderFor(escalated.key), escalated.id);
    EXPECT_EQ(co.stats().fanOuts, 0u);
}

} // namespace
} // namespace dejavu
