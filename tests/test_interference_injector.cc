/**
 * @file
 * Unit tests for interference injection (sim/interference.hh).
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/interference.hh"

namespace dejavu {
namespace {

TEST(InterferenceInjector, AppliesConfiguredLevels)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.10, 0.20};
    cfg.contentionMultiplier = 1.0;  // raw occupancy for this test
    InterferenceInjector inj(q, c, cfg, Rng(5));
    inj.start();
    for (int i = 0; i < c.poolSize(); ++i) {
        const double level = c.vm(i).interference();
        EXPECT_TRUE(level == 0.10 || level == 0.20)
            << "vm " << i << " has " << level;
    }
}

TEST(InterferenceInjector, ContentionAmplifiesOccupancy)
{
    // A 10-20% co-located occupancy costs the victim more than its
    // raw CPU share (cache/memory-bandwidth contention, [44]).
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.20};
    cfg.contentionMultiplier = 1.8;
    InterferenceInjector inj(q, c, cfg, Rng(5));
    inj.applyOnce();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_NEAR(c.vm(i).interference(), 0.36, 1e-12);
}

TEST(InterferenceInjector, PeriodicReassignmentChangesLevels)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.10, 0.20};
    cfg.period = hours(1);
    InterferenceInjector inj(q, c, cfg, Rng(7));
    inj.start();
    std::vector<double> initial;
    for (int i = 0; i < c.poolSize(); ++i)
        initial.push_back(c.vm(i).interference());
    q.runUntil(hours(3) + minutes(1));
    int changed = 0;
    for (int i = 0; i < c.poolSize(); ++i)
        if (c.vm(i).interference() !=
            initial[static_cast<std::size_t>(i)])
            ++changed;
    EXPECT_GT(changed, 0);  // with 10 VMs and 3 rounds, some flip
}

TEST(InterferenceInjector, StopClearsInterference)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    InterferenceInjector inj(q, c, cfg, Rng(9));
    inj.start();
    inj.stop();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
    // Pending reassignment events must be inert after stop.
    q.runUntil(hours(5));
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
}

TEST(InterferenceInjector, DisabledInjectorDoesNothing)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.enabled = false;
    InterferenceInjector inj(q, c, cfg, Rng(11));
    inj.start();
    q.runUntil(hours(3));
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.0);
}

TEST(InterferenceInjector, SingleLevelAppliesUniformly)
{
    EventQueue q;
    Cluster c(q, {});
    InterferenceInjector::Config cfg;
    cfg.levels = {0.15};
    cfg.contentionMultiplier = 1.0;
    InterferenceInjector inj(q, c, cfg, Rng(13));
    inj.applyOnce();
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).interference(), 0.15);
}

} // namespace
} // namespace dejavu
