/**
 * @file
 * Unit tests for k-means clustering (ml/kmeans.hh).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "ml/kmeans.hh"

namespace dejavu {
namespace {

/** Three well-separated 2-D Gaussian blobs. */
Dataset
blobs(int perCluster, std::uint64_t seed)
{
    Dataset d({"x", "y"});
    Rng rng(seed);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < perCluster; ++i)
            d.add({centers[c][0] + 0.3 * rng.gaussian(),
                   centers[c][1] + 0.3 * rng.gaussian()});
    return d;
}

TEST(KMeans, RecoversSeparatedBlobs)
{
    const Dataset d = blobs(30, 3);
    KMeans km(Rng(5));
    const Clustering c = km.run(d, 3);
    // Every ground-truth blob maps to exactly one cluster id.
    std::set<int> ids;
    for (int blob = 0; blob < 3; ++blob) {
        const int first = c.assignment[static_cast<std::size_t>(
            blob * 30)];
        for (int i = 0; i < 30; ++i)
            EXPECT_EQ(c.assignment[static_cast<std::size_t>(
                blob * 30 + i)], first);
        ids.insert(first);
    }
    EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeans, SilhouetteHighForSeparatedData)
{
    const Dataset d = blobs(25, 7);
    KMeans km(Rng(9));
    const Clustering c = km.run(d, 3);
    EXPECT_GT(c.silhouette, 0.8);
}

TEST(KMeans, AutoKFindsThreeBlobs)
{
    const Dataset d = blobs(25, 11);
    KMeans::Config cfg;
    cfg.autoKMin = 2;
    cfg.autoKMax = 6;
    cfg.criterion = AutoKCriterion::Silhouette;
    KMeans km(Rng(13), cfg);
    EXPECT_EQ(km.runAuto(d).k, 3);
}

TEST(KMeans, AutoKExplainedVarianceFindsThreeBlobs)
{
    const Dataset d = blobs(25, 15);
    KMeans::Config cfg;
    cfg.autoKMin = 2;
    cfg.autoKMax = 6;
    cfg.criterion = AutoKCriterion::ExplainedVariance;
    cfg.varianceExplained = 0.95;
    KMeans km(Rng(17), cfg);
    EXPECT_EQ(km.runAuto(d).k, 3);
}

TEST(KMeans, MedoidsAreClusterMembers)
{
    const Dataset d = blobs(20, 19);
    KMeans km(Rng(21));
    const Clustering c = km.run(d, 3);
    for (int k = 0; k < 3; ++k) {
        const int m = c.medoids[static_cast<std::size_t>(k)];
        ASSERT_GE(m, 0);
        ASSERT_LT(m, d.size());
        EXPECT_EQ(c.assignment[static_cast<std::size_t>(m)], k);
    }
}

TEST(KMeans, InertiaDecreasesWithK)
{
    const Dataset d = blobs(20, 23);
    KMeans km(Rng(25));
    const double i2 = km.run(d, 2).inertia;
    const double i4 = km.run(d, 4).inertia;
    EXPECT_GT(i2, i4);
}

TEST(KMeans, SingleClusterCoversAll)
{
    const Dataset d = blobs(10, 27);
    KMeans km(Rng(29));
    const Clustering c = km.run(d, 1);
    for (int a : c.assignment)
        EXPECT_EQ(a, 0);
    EXPECT_DOUBLE_EQ(c.silhouette, 0.0);  // undefined => 0
}

TEST(KMeans, DeterministicForSameSeed)
{
    const Dataset d = blobs(20, 31);
    KMeans a(Rng(33)), b(Rng(33));
    const Clustering ca = a.run(d, 3);
    const Clustering cb = b.run(d, 3);
    EXPECT_EQ(ca.assignment, cb.assignment);
    EXPECT_DOUBLE_EQ(ca.inertia, cb.inertia);
}

TEST(KMeans, HandlesDuplicatePoints)
{
    Dataset d({"x"});
    for (int i = 0; i < 10; ++i)
        d.add({1.0});
    for (int i = 0; i < 10; ++i)
        d.add({2.0});
    KMeans km(Rng(35));
    const Clustering c = km.run(d, 2);
    EXPECT_EQ(c.k, 2);
    EXPECT_NEAR(c.inertia, 0.0, 1e-12);
}

TEST(KMeans, SquaredDistance)
{
    EXPECT_DOUBLE_EQ(KMeans::squaredDistance({0.0, 0.0}, {3.0, 4.0}),
                     25.0);
    EXPECT_DOUBLE_EQ(KMeans::squaredDistance({1.0}, {1.0}), 0.0);
}

TEST(KMeansDeath, BadK)
{
    const Dataset d = blobs(5, 37);
    KMeans km(Rng(39));
    EXPECT_DEATH(km.run(d, 0), "out of range");
    EXPECT_DEATH(km.run(d, 1000), "out of range");
}

} // namespace
} // namespace dejavu
