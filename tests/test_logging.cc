/**
 * @file
 * Unit tests for logging (common/logging.hh).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace dejavu {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, FoldConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::fold("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::fold(), "");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(DEJAVU_PANIC("broken invariant ", 7),
                 "broken invariant 7");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH(DEJAVU_ASSERT(1 == 2, "math works"),
                 "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    DEJAVU_ASSERT(2 + 2 == 4, "never fires");
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithCode1)
{
    EXPECT_EXIT(fatal("user error: ", "bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace dejavu
