/**
 * @file
 * Unit tests for Dataset and Standardizer (ml/dataset.hh).
 */

#include <gtest/gtest.h>

#include "ml/dataset.hh"

namespace dejavu {
namespace {

Dataset
smallDataset()
{
    Dataset d({"x", "y", "z"});
    d.add({1.0, 10.0, 100.0}, 0);
    d.add({2.0, 20.0, 200.0}, 1);
    d.add({3.0, 30.0, 300.0}, 1);
    return d;
}

TEST(Dataset, BasicAccessors)
{
    const Dataset d = smallDataset();
    EXPECT_EQ(d.size(), 3);
    EXPECT_EQ(d.numAttributes(), 3);
    EXPECT_EQ(d.numClasses(), 2);
    EXPECT_EQ(d.label(0), 0);
    EXPECT_EQ(d.attributeName(1), "y");
    EXPECT_DOUBLE_EQ(d.instance(2)[0], 3.0);
}

TEST(Dataset, ColumnExtraction)
{
    const Dataset d = smallDataset();
    EXPECT_EQ(d.column(1), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(Dataset, UnlabeledInstances)
{
    Dataset d({"a"});
    d.add({1.0});
    EXPECT_EQ(d.label(0), -1);
    EXPECT_EQ(d.numClasses(), 0);
    d.setLabel(0, 3);
    EXPECT_EQ(d.numClasses(), 4);
}

TEST(Dataset, ProjectKeepsLabelsAndOrder)
{
    const Dataset d = smallDataset();
    const Dataset p = d.project({2, 0});
    EXPECT_EQ(p.numAttributes(), 2);
    EXPECT_EQ(p.attributeName(0), "z");
    EXPECT_EQ(p.attributeName(1), "x");
    EXPECT_DOUBLE_EQ(p.instance(1)[0], 200.0);
    EXPECT_EQ(p.label(1), 1);
}

TEST(Dataset, SplitCoversAllInstances)
{
    Dataset d({"x"});
    for (int i = 0; i < 100; ++i)
        d.add({static_cast<double>(i)}, i % 3);
    const auto [train, test] = d.split(0.7, 42);
    EXPECT_EQ(train.size() + test.size(), 100);
    EXPECT_EQ(train.size(), 70);
}

TEST(Dataset, SplitIsDeterministic)
{
    Dataset d({"x"});
    for (int i = 0; i < 50; ++i)
        d.add({static_cast<double>(i)}, 0);
    const auto [a1, b1] = d.split(0.5, 7);
    const auto [a2, b2] = d.split(0.5, 7);
    for (int i = 0; i < a1.size(); ++i)
        EXPECT_DOUBLE_EQ(a1.instance(i)[0], a2.instance(i)[0]);
}

TEST(DatasetDeath, WidthMismatch)
{
    Dataset d({"x", "y"});
    EXPECT_DEATH(d.add({1.0}), "width");
}

TEST(DatasetDeath, BadIndices)
{
    const Dataset d = smallDataset();
    EXPECT_DEATH(d.instance(99), "out of range");
    EXPECT_DEATH(d.column(7), "attribute index");
}

TEST(Standardizer, ZeroMeanUnitVariance)
{
    Dataset d({"a", "b"});
    d.add({1.0, 100.0});
    d.add({3.0, 300.0});
    d.add({5.0, 500.0});
    Standardizer s;
    s.fit(d);
    const Dataset t = s.transform(d);
    for (int a = 0; a < 2; ++a) {
        double sum = 0.0, sq = 0.0;
        for (int i = 0; i < t.size(); ++i) {
            sum += t.instance(i)[static_cast<std::size_t>(a)];
            sq += t.instance(i)[static_cast<std::size_t>(a)]
                * t.instance(i)[static_cast<std::size_t>(a)];
        }
        EXPECT_NEAR(sum / t.size(), 0.0, 1e-12);
        EXPECT_NEAR(sq / t.size(), 1.0, 1e-9);
    }
}

TEST(Standardizer, ConstantColumnSafe)
{
    Dataset d({"c"});
    d.add({5.0});
    d.add({5.0});
    Standardizer s;
    s.fit(d);
    const auto out = s.transform(std::vector<double>{5.0});
    EXPECT_DOUBLE_EQ(out[0], 0.0);  // no divide-by-zero
}

TEST(Standardizer, TransformNewVector)
{
    Dataset d({"x"});
    d.add({0.0});
    d.add({10.0});
    Standardizer s;
    s.fit(d);
    const auto out = s.transform(std::vector<double>{5.0});
    EXPECT_NEAR(out[0], 0.0, 1e-12);  // the mean maps to 0
}

TEST(StandardizerDeath, UseBeforeFit)
{
    Standardizer s;
    EXPECT_DEATH(s.transform(std::vector<double>{1.0}), "not fitted");
}

} // namespace
} // namespace dejavu
