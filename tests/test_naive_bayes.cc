/**
 * @file
 * Unit tests for Gaussian naive Bayes (ml/naive_bayes.hh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "ml/naive_bayes.hh"

namespace dejavu {
namespace {

Dataset
gaussianClasses(int perClass, std::uint64_t seed)
{
    Dataset d({"x", "y"});
    Rng rng(seed);
    for (int i = 0; i < perClass; ++i) {
        d.add({rng.gaussian(-2.0, 0.5), rng.gaussian(0.0, 0.5)}, 0);
        d.add({rng.gaussian(2.0, 0.5), rng.gaussian(1.0, 0.5)}, 1);
    }
    return d;
}

TEST(NaiveBayes, SeparatesGaussianClasses)
{
    NaiveBayes nb;
    nb.train(gaussianClasses(200, 3));
    EXPECT_EQ(nb.predict({-2.0, 0.0}).label, 0);
    EXPECT_EQ(nb.predict({2.0, 1.0}).label, 1);
}

TEST(NaiveBayes, PosteriorsSumToOne)
{
    NaiveBayes nb;
    nb.train(gaussianClasses(100, 5));
    const auto post = nb.posteriors({0.3, 0.5});
    double sum = 0.0;
    for (double p : post) {
        EXPECT_GE(p, 0.0);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NaiveBayes, ConfidenceHighAtClassCenters)
{
    NaiveBayes nb;
    nb.train(gaussianClasses(200, 7));
    EXPECT_GT(nb.predict({-2.0, 0.0}).confidence, 0.95);
}

TEST(NaiveBayes, ConfidenceLowerAtBoundary)
{
    NaiveBayes nb;
    nb.train(gaussianClasses(200, 9));
    const double center = nb.predict({-2.0, 0.0}).confidence;
    const double boundary = nb.predict({0.0, 0.5}).confidence;
    EXPECT_LT(boundary, center);
}

TEST(NaiveBayes, HandlesSingleInstanceClass)
{
    Dataset d({"x"});
    d.add({0.0}, 0);
    d.add({0.1}, 0);
    d.add({10.0}, 1);  // one-member class: variance falls back
    NaiveBayes nb;
    nb.train(d);
    EXPECT_EQ(nb.predict({10.0}).label, 1);
    EXPECT_EQ(nb.predict({0.05}).label, 0);
}

TEST(NaiveBayes, PriorsMatter)
{
    // 9:1 class imbalance shifts ambiguous predictions to the
    // majority class.
    Dataset d({"x"});
    Rng rng(11);
    for (int i = 0; i < 90; ++i)
        d.add({rng.gaussian(0.0, 1.0)}, 0);
    for (int i = 0; i < 10; ++i)
        d.add({rng.gaussian(1.0, 1.0)}, 1);
    NaiveBayes nb;
    nb.train(d);
    EXPECT_EQ(nb.predict({0.5}).label, 0);
}

TEST(NaiveBayesDeath, PredictBeforeTrain)
{
    NaiveBayes nb;
    EXPECT_DEATH(nb.predict({1.0}), "not trained");
}

TEST(NaiveBayesDeath, WidthMismatch)
{
    NaiveBayes nb;
    nb.train(gaussianClasses(10, 13));
    EXPECT_DEATH(nb.predict({1.0}), "width mismatch");
}

} // namespace
} // namespace dejavu
