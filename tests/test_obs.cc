/**
 * @file
 * Tests for the unified observability layer (src/obs/): the
 * TraceRecorder's ring storage and Chrome trace-event JSON exporter
 * (schema-validated with a minimal JSON walker, both on a fresh
 * recording and on the committed sample trace), the MetricsRegistry's
 * kv and Prometheus writers plus their concurrency contract, the
 * power-of-two histogram's quantile bounds, and the load-bearing
 * determinism claim: attaching a recorder to a fleet cell changes no
 * digest byte.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "experiments/runner.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dejavu {
namespace {

// --------------------------------------------------------------------
// A minimal JSON reader — just enough to validate the trace schema
// without growing a dependency. Objects keep member order; numbers
// are doubles (trace timestamps fit exactly).
// --------------------------------------------------------------------

struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> items;  // Array
    std::vector<std::pair<std::string, Json>> members;  // Object

    const Json *find(const std::string &key) const
    {
        for (const auto &[name, value] : members)
            if (name == key)
                return &value;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    /** Parse the whole input; sets ok() false on any syntax error. */
    Json parse()
    {
        Json v = value();
        skipWs();
        if (_pos != _text.size())
            _ok = false;
        return v;
    }

    bool ok() const { return _ok; }

  private:
    void skipWs()
    {
        while (_pos < _text.size()
               && std::isspace(static_cast<unsigned char>(
                   _text[_pos])))
            ++_pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    Json value()
    {
        skipWs();
        if (_pos >= _text.size()) {
            _ok = false;
            return {};
        }
        const char c = _text[_pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return {};
        }
        return number();
    }

    Json object()
    {
        Json v;
        v.type = Json::Type::Object;
        consume('{');
        if (consume('}'))
            return v;
        do {
            Json key = string();
            if (!consume(':')) {
                _ok = false;
                return v;
            }
            v.members.emplace_back(std::move(key.str), value());
        } while (consume(','));
        if (!consume('}'))
            _ok = false;
        return v;
    }

    Json array()
    {
        Json v;
        v.type = Json::Type::Array;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.items.push_back(value());
        } while (consume(','));
        if (!consume(']'))
            _ok = false;
        return v;
    }

    Json string()
    {
        Json v;
        v.type = Json::Type::String;
        if (!consume('"')) {
            _ok = false;
            return v;
        }
        while (_pos < _text.size() && _text[_pos] != '"') {
            char c = _text[_pos++];
            if (c == '\\' && _pos < _text.size()) {
                const char esc = _text[_pos++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'u':
                    _pos += 4;  // \uXXXX — keep a placeholder
                    c = '?';
                    break;
                default: c = esc; break;
                }
            }
            v.str.push_back(c);
        }
        if (!consume('"'))
            _ok = false;
        return v;
    }

    Json boolean()
    {
        Json v;
        v.type = Json::Type::Bool;
        if (_text[_pos] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    Json number()
    {
        Json v;
        v.type = Json::Type::Number;
        const char *start = _text.c_str() + _pos;
        char *end = nullptr;
        v.number = std::strtod(start, &end);
        if (end == start) {
            _ok = false;
            return v;
        }
        _pos += static_cast<std::size_t>(end - start);
        return v;
    }

    void literal(const char *word)
    {
        const std::string w(word);
        if (_text.compare(_pos, w.size(), w) == 0)
            _pos += w.size();
        else
            _ok = false;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    bool _ok = true;
};

// --------------------------------------------------------------------
// The trace-schema validator shared by the fresh-recording test and
// the committed-sample golden test.
// --------------------------------------------------------------------

/** Validate the Chrome trace-event contract writeChromeJson promises:
 *  object form with a traceEvents array; every event carries
 *  name/ph/pid/tid; ph is one of B/E/X/i/M; X events carry dur;
 *  instants carry thread scope; per-(pid, tid) track timestamps are
 *  monotonic and B/E nesting is balanced. @p payloadOut (optional)
 *  receives the number of non-metadata events. */
void
validateTrace(const Json &root, std::size_t *payloadOut = nullptr)
{
    if (payloadOut != nullptr)
        *payloadOut = 0;
    EXPECT_EQ(root.type, Json::Type::Object);
    const Json *display = root.find("displayTimeUnit");
    ASSERT_NE(display, nullptr) << "missing displayTimeUnit";
    const Json *events = root.find("traceEvents");
    EXPECT_NE(events, nullptr) << "missing traceEvents";
    if (events == nullptr)
        return;
    EXPECT_EQ(events->type, Json::Type::Array);

    struct Track
    {
        double lastTs = 0.0;
        bool any = false;
        int depth = 0;
    };
    std::map<std::pair<double, double>, Track> tracks;
    std::size_t payloadEvents = 0;

    for (const Json &ev : events->items) {
        EXPECT_EQ(ev.type, Json::Type::Object);
        const Json *name = ev.find("name");
        const Json *ph = ev.find("ph");
        const Json *pid = ev.find("pid");
        const Json *tid = ev.find("tid");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(tid, nullptr);
        EXPECT_EQ(ph->str.size(), 1u);
        const char phase = ph->str.empty() ? '?' : ph->str[0];
        EXPECT_TRUE(phase == 'B' || phase == 'E' || phase == 'X'
                    || phase == 'i' || phase == 'M')
            << "unknown phase " << ph->str;
        if (phase == 'M')
            continue;  // metadata names tracks, carries no ts

        ++payloadEvents;
        const Json *ts = ev.find("ts");
        ASSERT_NE(ts, nullptr) << "payload event without ts";
        Track &track = tracks[{pid->number, tid->number}];
        if (track.any)
            EXPECT_GE(ts->number, track.lastTs)
                << "track (" << pid->number << ", " << tid->number
                << ") not monotonic";
        track.lastTs = ts->number;
        track.any = true;
        if (phase == 'B')
            ++track.depth;
        if (phase == 'E') {
            --track.depth;
            EXPECT_GE(track.depth, 0) << "E without matching B";
        }
        if (phase == 'X') {
            const Json *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr) << "X event without dur";
            EXPECT_GE(dur->number, 0.0);
        }
        if (phase == 'i') {
            const Json *scope = ev.find("s");
            ASSERT_NE(scope, nullptr) << "instant without scope";
        }
    }
    for (const auto &[key, track] : tracks)
        EXPECT_EQ(track.depth, 0)
            << "unbalanced spans on track (" << key.first << ", "
            << key.second << ")";
    if (payloadOut != nullptr)
        *payloadOut = payloadEvents;
}

Json
parseTrace(const std::string &text)
{
    JsonParser parser(text);
    Json root = parser.parse();
    EXPECT_TRUE(parser.ok()) << "trace JSON failed to parse";
    return root;
}

// --------------------------------------------------------------------
// TraceRecorder
// --------------------------------------------------------------------

TEST(TraceRecorder, RecordsSpansAndInstants)
{
    obs::TraceRecorder trace;
    const obs::LaneId queue = trace.lane("pool/queue");
    const obs::LaneId host = trace.lane("pool/host-0");
    EXPECT_EQ(trace.lane("pool/queue"), queue) << "lanes deduplicate";
    EXPECT_EQ(trace.laneCount(), 2u);

    trace.instant(queue, "submit", 10);
    trace.begin(host, "slot", 20, trace.intern("svc-a"), 7);
    trace.end(host, 30);
    trace.complete(queue, "adapt", 15, 25);
    EXPECT_EQ(trace.eventCount(), 4u);
    EXPECT_EQ(trace.dropped(), 0u);

    trace.clear();
    EXPECT_EQ(trace.eventCount(), 0u);
    EXPECT_EQ(trace.laneCount(), 2u) << "lanes survive clear()";
}

TEST(TraceRecorder, RingRecyclesOldestSlab)
{
    obs::TraceRecorder::Config config;
    config.maxEvents = 1024;  // two 512-event slabs
    obs::TraceRecorder trace(config);
    const obs::LaneId lane = trace.lane("ring");
    for (int i = 0; i < 1536; ++i)
        trace.instant(lane, "tick", i);
    EXPECT_EQ(trace.eventCount(), 1024u);
    EXPECT_EQ(trace.dropped(), 512u);
}

TEST(TraceRecorder, ChromeJsonSchemaHolds)
{
    obs::TraceRecorder trace;
    const obs::LaneId queue = trace.lane("pool/queue");
    const obs::LaneId host = trace.lane("pool/host-0");
    const obs::LaneId learn =
        trace.lane("phase/learn", obs::ClockDomain::Wall);

    // Deliberately append out of timestamp order across lanes (the
    // exporter sorts per lane) and leave one span unmatched (the
    // exporter closes it at the lane's final timestamp).
    trace.instant(queue, "submit", 50, trace.intern("svc-b"), 3);
    trace.begin(host, "slot", 10);
    trace.end(host, 40);
    trace.complete(queue, "adapt", 5, 30);
    trace.begin(host, "outage", 60);  // never ended
    trace.instant(host, "host.lost", 70);
    trace.begin(learn, "learn.prepare", 0);
    trace.end(learn, 9);

    std::ostringstream os;
    trace.writeChromeJson(os);
    const Json root = parseTrace(os.str());
    std::size_t payload = 0;
    validateTrace(root, &payload);
    // 8 appended + 1 synthesized close for the dangling begin.
    EXPECT_EQ(payload, 9u);

    // Both clock domains must surface as their own processes.
    const std::string text = os.str();
    EXPECT_NE(text.find("\"sim-time\""), std::string::npos);
    EXPECT_NE(text.find("\"wall-time\""), std::string::npos);
    EXPECT_NE(text.find("\"pool/host-0\""), std::string::npos);
    EXPECT_NE(text.find("\"svc-b\""), std::string::npos)
        << "interned detail text missing from args";
}

TEST(TraceRecorder, CommittedSampleTraceIsValid)
{
    // The golden file: the sample trace bench_fleet_tails --trace-out
    // commits (docs/traces/) must stay loadable — this is the "loads
    // in Perfetto" acceptance proxy CI can run.
    const std::string path = std::string(DEJAVU_SOURCE_DIR)
        + "/docs/traces/fleet-ycsb-100+daemons+hostloss.trace.json";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing committed sample trace: " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Json root = parseTrace(buffer.str());
    std::size_t payload = 0;
    validateTrace(root, &payload);
    EXPECT_GT(payload, 1000u)
        << "sample trace suspiciously small for a 100-service cell";
    const std::string text = buffer.str();
    EXPECT_NE(text.find("\"host.lost\""), std::string::npos)
        << "host-loss scenario without host.lost instants";
    EXPECT_NE(text.find("\"learnPrepared\""), std::string::npos)
        << "learn phase spans missing";
}

TEST(TraceRecorder, SynchronizedConcurrentAppends)
{
    obs::TraceRecorder::Config config;
    config.synchronized = true;
    config.maxEvents = 1 << 15;
    obs::TraceRecorder trace(config);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 4000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&trace, t] {
            const obs::LaneId lane = trace.lane(
                "session/" + std::to_string(t),
                obs::ClockDomain::Wall);
            for (int i = 0; i < kPerThread; ++i) {
                const std::int64_t ts = i * 2;
                trace.complete(lane, "sample.hit", ts, 1,
                               obs::TraceRecorder::kNoDetail,
                               static_cast<std::uint64_t>(i));
            }
        });
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(trace.eventCount() + trace.dropped(),
              static_cast<std::size_t>(kThreads * kPerThread));
    std::ostringstream os;
    trace.writeChromeJson(os);
    const Json root = parseTrace(os.str());
    validateTrace(root);
}

// --------------------------------------------------------------------
// LatencyHistogram + MetricsRegistry
// --------------------------------------------------------------------

TEST(LatencyHistogram, QuantileBoundsBracketTheSample)
{
    obs::LatencyHistogram hist;
    EXPECT_EQ(hist.quantileNanos(0.5), 0u) << "empty histogram";
    EXPECT_EQ(hist.quantileBoundsNanos(0.99).upper, 0u);

    // 90 fast samples in [128, 255] ns, 10 slow in [4096, 8191] ns.
    for (int i = 0; i < 90; ++i)
        hist.record(200);
    for (int i = 0; i < 10; ++i)
        hist.record(5000);

    const auto p50 = hist.quantileBoundsNanos(0.5);
    EXPECT_EQ(p50.lower, 128u);
    EXPECT_EQ(p50.upper, 255u);
    const auto p99 = hist.quantileBoundsNanos(0.99);
    EXPECT_EQ(p99.lower, 4096u);
    EXPECT_EQ(p99.upper, 8191u);
    // quantileNanos stays the conservative upper bound.
    EXPECT_EQ(hist.quantileNanos(0.99), p99.upper);
    EXPECT_LE(p99.lower, 5000u);
    EXPECT_GE(p99.upper, 5000u);
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_EQ(hist.sumNanos(), 90u * 200u + 10u * 5000u);
}

TEST(MetricsRegistry, HandlesAreStableAndKindChecked)
{
    obs::MetricsRegistry registry;
    obs::Counter &c = registry.counter("fleet.adaptations");
    c.inc(41);
    registry.counter("fleet.adaptations").inc();
    EXPECT_EQ(c.value(), 42u) << "counter() must find, not recreate";
    registry.setGauge("fleet.repo.hit_rate", 0.75);
    registry.histogram("serving.latency").record(1000);
    EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, KvFormatIsSortedWithHistogramBounds)
{
    obs::MetricsRegistry registry;
    registry.counter("b.count").inc(7);
    registry.setGauge("a.rate", 0.5);
    obs::LatencyHistogram &hist = registry.histogram("c.latency");
    for (int i = 0; i < 4; ++i)
        hist.record(200);

    const std::string kv = registry.kv();
    std::istringstream in(kv);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_EQ(lines[0], "a.rate 0.5");
    EXPECT_EQ(lines[1], "b.count 7");
    EXPECT_EQ(lines[2], "c.latency_count 4");
    // Both edges of the quantile bucket are reported — the honest
    // answer a power-of-two histogram can give.
    EXPECT_EQ(lines[3], "c.latency_p50_lo_ns 128");
    EXPECT_EQ(lines[4], "c.latency_p50_ns 255");
    EXPECT_EQ(lines[5], "c.latency_p99_lo_ns 128");
    EXPECT_EQ(lines[6], "c.latency_p99_ns 255");
}

TEST(MetricsRegistry, PrometheusExposition)
{
    obs::MetricsRegistry registry;
    registry.counter("serving.samples").inc(3);
    registry.setGauge("fleet.repo.hit_rate", 0.9);
    obs::LatencyHistogram &hist =
        registry.histogram("serving.latency");
    hist.record(200);   // bucket [128, 255]
    hist.record(5000);  // bucket [4096, 8191]

    std::ostringstream os;
    registry.writePrometheus(os);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE serving_samples counter"),
              std::string::npos);
    EXPECT_NE(text.find("serving_samples 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE fleet_repo_hit_rate gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serving_latency histogram"),
              std::string::npos);
    EXPECT_NE(text.find("serving_latency_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos)
        << "cumulative series must end at +Inf with the total";
    EXPECT_NE(text.find("serving_latency_sum 5.2e-06"),
              std::string::npos)
        << "sum must be seconds (5200 ns)";
}

TEST(MetricsRegistry, ConcurrentUpdatesAndScrapes)
{
    obs::MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry] {
            obs::Counter &hits = registry.counter("serving.samples");
            obs::LatencyHistogram &latency =
                registry.histogram("serving.latency");
            for (int i = 0; i < kPerThread; ++i) {
                hits.inc();
                latency.record(
                    static_cast<std::uint64_t>(100 + i % 1000));
                registry.setGauge("serving.rate",
                                  static_cast<double>(i));
            }
        });
    // A scraper racing the writers: relaxed snapshots must be safe
    // (this is what the TSan CI leg checks).
    threads.emplace_back([&registry] {
        for (int i = 0; i < 50; ++i) {
            std::ostringstream os;
            registry.writePrometheus(os);
            std::ostringstream kv;
            registry.writeKv(kv);
        }
    });
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(registry.counter("serving.samples").value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(registry.histogram("serving.latency").count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

// --------------------------------------------------------------------
// The determinism claim: tracing observes, never schedules.
// --------------------------------------------------------------------

TEST(TraceDeterminism, FleetDigestIdenticalTracedVsNot)
{
    setLogLevel(LogLevel::Silent);
    const SweepCell cell{"fleet-mixed-100-h4-shared-wq", "fifo", 42};
    std::string csv[2];
    for (int traced = 0; traced < 2; ++traced) {
        obs::TraceRecorder recorder;
        auto stack = makeFleetScenario(
            cell.scenario, cell.seed,
            slotPolicyFromName(cell.policy));
        if (traced)
            stack->attachTrace(recorder);
        stack->learnAll();
        stack->startInjectors();
        stack->experiment->run();
        std::vector<FleetCellResult> rows;
        rows.push_back({cell, stack->experiment->summary()});
        csv[traced] = fleetSweepCsv(rows);
        if (traced)
            EXPECT_GT(recorder.eventCount(), 0u)
                << "recorder attached but nothing was traced";
    }
    EXPECT_EQ(csv[0], csv[1])
        << "attaching a recorder changed the sweep digest";
}

} // namespace
} // namespace dejavu
