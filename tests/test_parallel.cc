/**
 * @file
 * Unit tests for the shared fan-out primitive (common/parallel.hh)
 * and the concurrency contracts documented on SeriesArena
 * (common/arena.hh). The multi-threaded cases here are deliberately
 * racy-looking workloads — they are the ones the ThreadSanitizer CI
 * leg runs to prove the contracts hold.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/arena.hh"
#include "common/parallel.hh"

namespace dejavu {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce)
{
    for (const int threads : {0, 1, 2, 8}) {
        constexpr std::size_t kN = 103;
        std::vector<std::atomic<int>> hits(kN);
        parallelFor(kN, threads, [&hits](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(hits[i].load(), 1)
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ParallelFor, ZeroItemsIsANoOp)
{
    std::atomic<int> calls{0};
    parallelFor(0, 8, [&calls](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PerIndexSlotsMatchSequentialAtAnyThreadCount)
{
    constexpr std::size_t kN = 64;
    std::vector<double> sequential(kN);
    for (std::size_t i = 0; i < kN; ++i)
        sequential[i] = static_cast<double>(i * i) + 0.5;

    for (const int threads : {1, 3, 8}) {
        std::vector<double> got(kN);
        parallelFor(kN, threads, [&got](std::size_t i) {
            got[i] = static_cast<double>(i * i) + 0.5;
        });
        EXPECT_EQ(got, sequential) << threads << " threads";
    }
}

TEST(SeriesArena, AppendAndReadBack)
{
    SeriesArena arena;
    const auto a = arena.newStream();
    const auto b = arena.newStream();
    EXPECT_EQ(arena.streams(), 2u);

    // Cross two chunk boundaries to cover the chunk-growth path.
    const std::size_t n = SeriesArena::kChunkPoints * 2 + 7;
    for (std::size_t i = 0; i < n; ++i)
        arena.append(a, static_cast<double>(i), 2.0 * i);
    arena.append(b, 1.0, -1.0);

    EXPECT_EQ(arena.size(a), n);
    EXPECT_EQ(arena.size(b), 1u);
    EXPECT_EQ(arena.totalPoints(), n + 1);

    std::size_t i = 0;
    arena.forEach(a, [&i](const SeriesArena::Point &p) {
        EXPECT_DOUBLE_EQ(p.t, static_cast<double>(i));
        EXPECT_DOUBLE_EQ(p.v, 2.0 * i);
        ++i;
    });
    EXPECT_EQ(i, n);

    // 3 chunks for stream a, 1 for stream b.
    EXPECT_EQ(arena.bytesAllocated(),
              4 * SeriesArena::kChunkPoints *
                  sizeof(SeriesArena::Point));
}

TEST(SeriesArena, ConcurrentAppendsToDistinctStreams)
{
    // The documented contract: once streams exist, appends to
    // *distinct* streams share no arena state. Hammer it from a full
    // pool; TSan (CI sanitize matrix) flags any regression that
    // reintroduces cross-stream writes.
    constexpr std::size_t kStreams = 16;
    constexpr std::size_t kPerStream =
        SeriesArena::kChunkPoints * 3 + 11;

    SeriesArena arena;
    arena.reserveStreams(kStreams);
    std::vector<SeriesArena::StreamId> ids;
    ids.reserve(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s)
        ids.push_back(arena.newStream());

    parallelFor(kStreams, 8, [&arena, &ids](std::size_t s) {
        for (std::size_t i = 0; i < kPerStream; ++i)
            arena.append(ids[s], static_cast<double>(i),
                         static_cast<double>(s * 1000 + i));
    });

    EXPECT_EQ(arena.totalPoints(), kStreams * kPerStream);
    for (std::size_t s = 0; s < kStreams; ++s) {
        ASSERT_EQ(arena.size(ids[s]), kPerStream);
        std::size_t i = 0;
        arena.forEach(ids[s], [&](const SeriesArena::Point &p) {
            ASSERT_DOUBLE_EQ(p.t, static_cast<double>(i));
            ASSERT_DOUBLE_EQ(p.v, static_cast<double>(s * 1000 + i));
            ++i;
        });
    }
}

TEST(FlatMatrix, AssignAndIndex)
{
    FlatMatrix m;
    EXPECT_TRUE(m.empty());
    m.assign({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);
    m.row(1)[0] = -3.0;
    EXPECT_DOUBLE_EQ(m.at(1, 0), -3.0);
}

} // namespace
} // namespace dejavu
