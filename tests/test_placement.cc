/**
 * @file
 * Tests for VM-to-PM placement and placement-correlated interference
 * (sim/placement.hh).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/placement.hh"

namespace dejavu {
namespace {

class PlacementTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};  // pool of 10 VMs
};

TEST_F(PlacementTest, PacksVmsOntoMachines)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    EXPECT_EQ(placement.machines(), 5);
    EXPECT_EQ(placement.machineOf(0), 0);
    EXPECT_EQ(placement.machineOf(1), 0);
    EXPECT_EQ(placement.machineOf(2), 1);
    EXPECT_EQ(placement.machineOf(9), 4);
}

TEST_F(PlacementTest, UnevenPoolGetsExtraMachine)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 3});
    EXPECT_EQ(placement.machines(), 4);  // 3+3+3+1
    EXPECT_EQ(placement.vmsOn(3), (std::vector<int>{9}));
}

TEST_F(PlacementTest, VmsOnPartitionsThePool)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 4});
    std::set<int> seen;
    int total = 0;
    for (int m = 0; m < placement.machines(); ++m) {
        for (int v : placement.vmsOn(m)) {
            EXPECT_TRUE(seen.insert(v).second);
            ++total;
        }
    }
    EXPECT_EQ(total, cluster.poolSize());
}

TEST_F(PlacementTest, MachinePressureHitsAllItsVms)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    placement.setMachinePressure(1, 0.3);
    EXPECT_DOUBLE_EQ(cluster.vm(2).interference(), 0.3);
    EXPECT_DOUBLE_EQ(cluster.vm(3).interference(), 0.3);
    EXPECT_DOUBLE_EQ(cluster.vm(0).interference(), 0.0);
    EXPECT_DOUBLE_EQ(cluster.vm(4).interference(), 0.0);
    placement.clearPressure();
    EXPECT_DOUBLE_EQ(cluster.vm(2).interference(), 0.0);
}

TEST_F(PlacementTest, InjectorCorrelatesCoHostedVms)
{
    // VMs sharing a machine always carry identical pressure: the
    // co-located tenant is a property of the host, not the VM.
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    PlacementAwareInjector injector(queue, placement, {}, Rng(7));
    injector.start();
    for (int round = 0; round < 4; ++round) {
        for (int m = 0; m < placement.machines(); ++m) {
            const auto vms = placement.vmsOn(m);
            for (std::size_t i = 1; i < vms.size(); ++i)
                EXPECT_DOUBLE_EQ(
                    cluster.vm(vms[i]).interference(),
                    cluster.vm(vms[0]).interference());
        }
        queue.runUntil(queue.now() + hours(2) + minutes(1));
    }
}

TEST_F(PlacementTest, InjectorVariesAcrossMachines)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    PlacementAwareInjector::Config cfg;
    cfg.levels = {0.10, 0.20};
    PlacementAwareInjector injector(queue, placement, cfg, Rng(11));
    injector.start();
    // Over several rounds, different machines see different levels.
    std::set<double> levels;
    for (int round = 0; round < 6; ++round) {
        for (int m = 0; m < placement.machines(); ++m)
            levels.insert(
                cluster.vm(placement.vmsOn(m)[0]).interference());
        queue.runUntil(queue.now() + hours(2) + minutes(1));
    }
    EXPECT_GE(levels.size(), 2u);
}

TEST_F(PlacementTest, TenantedFractionLeavesMachinesQuiet)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    PlacementAwareInjector::Config cfg;
    cfg.tenantedFraction = 0.0;
    PlacementAwareInjector injector(queue, placement, cfg, Rng(13));
    injector.start();
    for (int v = 0; v < cluster.poolSize(); ++v)
        EXPECT_DOUBLE_EQ(cluster.vm(v).interference(), 0.0);
}

TEST_F(PlacementTest, StopClearsPressure)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 5});
    PlacementAwareInjector injector(queue, placement, {}, Rng(17));
    injector.start();
    injector.stop();
    for (int v = 0; v < cluster.poolSize(); ++v)
        EXPECT_DOUBLE_EQ(cluster.vm(v).interference(), 0.0);
    queue.runUntil(hours(5));
    for (int v = 0; v < cluster.poolSize(); ++v)
        EXPECT_DOUBLE_EQ(cluster.vm(v).interference(), 0.0);
}

TEST_F(PlacementTest, PerVmHeterogeneityAcrossHosts)
{
    // "even virtual instances of the same type might have very
    // different performance over time" (§2.2): with per-machine
    // tenants, effective capacity differs across co-hosted groups.
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    placement.setMachinePressure(0, 0.36);
    placement.setMachinePressure(1, 0.0);
    cluster.setActiveInstances(4);
    queue.runUntil(minutes(1));
    EXPECT_LT(cluster.vm(0).effectiveCapacityFactor(),
              cluster.vm(2).effectiveCapacityFactor());
}

TEST_F(PlacementTest, BadIndicesDie)
{
    PlacementMap placement(cluster, {.vmsPerMachine = 2});
    EXPECT_DEATH(placement.machineOf(99), "out of range");
    EXPECT_DEATH(placement.vmsOn(99), "out of range");
}

} // namespace
} // namespace dejavu
