/**
 * @file
 * Property-based tests (parameterized sweeps): invariants that must
 * hold across whole parameter ranges, not just single points.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/interference_estimator.hh"
#include "core/tuner.hh"
#include "counters/counter_model.hh"
#include "counters/monitor.hh"
#include "counters/profiler.hh"
#include "ml/kmeans.hh"
#include "services/keyvalue_service.hh"
#include "services/perf_model.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "workload/trace_library.hh"

namespace dejavu {
namespace {

// --------------------------------------------------------------------
// Latency curve properties over a utilization sweep.
// --------------------------------------------------------------------

class LatencyCurveProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(LatencyCurveProperty, AtLeastBaseLatency)
{
    const double rho = GetParam();
    EXPECT_GE(PerfModel::meanLatencyMs(10.0, rho), 10.0);
}

TEST_P(LatencyCurveProperty, MonotoneInBaseLatency)
{
    const double rho = GetParam();
    EXPECT_LE(PerfModel::meanLatencyMs(5.0, rho),
              PerfModel::meanLatencyMs(15.0, rho));
}

TEST_P(LatencyCurveProperty, QosWithinBounds)
{
    const double rho = GetParam();
    const double q = PerfModel::qosPercent(rho);
    EXPECT_GE(q, 50.0);
    EXPECT_LE(q, 99.5);
}

INSTANTIATE_TEST_SUITE_P(UtilizationSweep, LatencyCurveProperty,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.55,
                                           0.7, 0.8, 0.9, 0.95, 1.0,
                                           1.1, 1.3));

// --------------------------------------------------------------------
// Counter-model properties over load levels.
// --------------------------------------------------------------------

struct CounterSweepParam
{
    double rate;
    ServiceKind kind;
};

class CounterModelProperty
    : public ::testing::TestWithParam<CounterSweepParam>
{
};

TEST_P(CounterModelProperty, RatesAreFiniteAndNonNegative)
{
    const auto p = GetParam();
    CounterModel model(p.kind, Rng(3));
    const auto rates =
        model.expectedRates(cassandraBalanced(), p.rate, p.rate / 800.0);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        EXPECT_TRUE(std::isfinite(rates[i]))
            << hpcEventName(static_cast<HpcEvent>(i));
        EXPECT_GE(rates[i], 0.0)
            << hpcEventName(static_cast<HpcEvent>(i));
    }
}

TEST_P(CounterModelProperty, CpuCyclesMonotoneInLoad)
{
    const auto p = GetParam();
    CounterModel model(p.kind, Rng(5));
    const auto lo =
        model.expectedRates(cassandraBalanced(), p.rate, 0.2);
    const auto hi =
        model.expectedRates(cassandraBalanced(), p.rate * 2.0, 0.4);
    const auto idx = static_cast<std::size_t>(HpcEvent::CpuClkUnhalted);
    EXPECT_LT(lo[idx], hi[idx]);
}

INSTANTIATE_TEST_SUITE_P(
    LoadAndKindSweep, CounterModelProperty,
    ::testing::Values(CounterSweepParam{50.0, ServiceKind::KeyValue},
                      CounterSweepParam{200.0, ServiceKind::KeyValue},
                      CounterSweepParam{500.0, ServiceKind::KeyValue},
                      CounterSweepParam{50.0, ServiceKind::SpecWeb},
                      CounterSweepParam{200.0, ServiceKind::SpecWeb},
                      CounterSweepParam{500.0, ServiceKind::Rubis},
                      CounterSweepParam{200.0, ServiceKind::Rubis}));

// --------------------------------------------------------------------
// Signature normalization invariance across sampling durations.
// --------------------------------------------------------------------

class NormalizationProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(NormalizationProperty, DurationInvariantSignatures)
{
    const double durationSec = GetParam();
    EventQueue queue;
    Cluster cluster(queue, {});
    KeyValueService service(queue, cluster, Rng(7));
    service.setWorkload({cassandraUpdateHeavy(), 8000.0});

    CounterModel::Config quiet;
    quiet.noise = 0.0;
    quiet.decoyNoise = 0.0;

    Monitor::Config cfg;
    cfg.sampleDuration = seconds(durationSec);
    Monitor monitor(service,
                    CounterModel(ServiceKind::KeyValue, Rng(9), quiet),
                    cfg);
    Monitor::Config ref_cfg;
    ref_cfg.sampleDuration = seconds(10);
    Monitor reference(service,
                      CounterModel(ServiceKind::KeyValue, Rng(9),
                                   quiet),
                      ref_cfg);

    const auto a = monitor.collect();
    const auto b = reference.collect();
    for (std::size_t i = 0; i < a.values.size(); ++i) {
        if (static_cast<HpcEvent>(i) == HpcEvent::Bogus2)
            continue;
        EXPECT_NEAR(a.values[i], b.values[i],
                    std::abs(b.values[i]) * 1e-6 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(DurationSweep, NormalizationProperty,
                         ::testing::Values(1.0, 5.0, 10.0, 30.0, 60.0,
                                           120.0));

// --------------------------------------------------------------------
// Tuner minimality across load levels.
// --------------------------------------------------------------------

class TunerProperty : public ::testing::TestWithParam<double>
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(11)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(13))),
        Rng(15)};
};

TEST_P(TunerProperty, ChosenAllocationIsMinimalAndAdequate)
{
    const double clients = GetParam();
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const Workload w{cassandraUpdateHeavy(), clients};
    const auto result = tuner.tune(w);
    if (!result.feasible)
        GTEST_SKIP() << "beyond full capacity";
    EXPECT_LE(service.hypotheticalLatencyMs(w, result.allocation),
              60.0);
    if (result.allocation.instances > 1) {
        ResourceAllocation smaller = result.allocation;
        --smaller.instances;
        // One step less must fail the (headroom-adjusted) target.
        EXPECT_GT(service.hypotheticalLatencyMs(w, smaller),
                  60.0 * 0.9);
    }
}

TEST_P(TunerProperty, InterferenceNeverReducesAllocation)
{
    const double clients = GetParam();
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const Workload w{cassandraUpdateHeavy(), clients};
    const auto clean = tuner.tune(w, 0.0);
    const auto dirty = tuner.tune(w, 0.15);
    EXPECT_GE(dirty.allocation.instances, clean.allocation.instances);
}

INSTANTIATE_TEST_SUITE_P(ClientSweep, TunerProperty,
                         ::testing::Values(2000.0, 6000.0, 12000.0,
                                           20000.0, 28000.0, 36000.0,
                                           42000.0));

// --------------------------------------------------------------------
// Interference estimator bucket coherence across index values.
// --------------------------------------------------------------------

class BucketProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(BucketProperty, FloorIsConsistentWithBucketOf)
{
    const double index = GetParam();
    InterferenceEstimator est;
    const int bucket = est.bucketOf(index);
    // Bucket 0 covers everything at-or-below 1+tolerance, including
    // indices below 1 (production faster than isolation); the top
    // bucket absorbs everything beyond it (saturation episodes).
    if (bucket > 0) {
        EXPECT_GE(index, est.bucketFloor(bucket) - 1e-9);
        if (bucket < est.config().maxBucket) {
            EXPECT_LT(index, est.bucketFloor(bucket + 1) + 1e-9);
        }
    } else {
        EXPECT_LE(index, 1.0 + est.config().tolerance + 1e-9);
    }
}

TEST_P(BucketProperty, BucketMonotoneInIndex)
{
    const double index = GetParam();
    InterferenceEstimator est;
    EXPECT_LE(est.bucketOf(index), est.bucketOf(index + 0.3));
}

INSTANTIATE_TEST_SUITE_P(IndexSweep, BucketProperty,
                         ::testing::Values(0.5, 1.0, 1.1, 1.21, 1.35,
                                           1.5, 1.8, 2.2, 3.0, 5.0));

// --------------------------------------------------------------------
// Trace generator invariants across seeds.
// --------------------------------------------------------------------

class TraceProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceProperty, TracesNormalizedAndPositive)
{
    TraceOptions opt;
    opt.seed = GetParam();
    for (const LoadTrace &t :
         {makeMessengerTrace(opt), makeHotmailTrace(opt)}) {
        double mx = 0.0;
        for (std::size_t h = 0; h < t.hours(); ++h) {
            EXPECT_GT(t.at(h), 0.0);
            EXPECT_LE(t.at(h), 1.0);
            mx = std::max(mx, t.at(h));
        }
        EXPECT_DOUBLE_EQ(mx, 1.0);
    }
}

TEST_P(TraceProperty, EveryDayIsDiurnal)
{
    // Days deliberately differ in amplitude and peak phase (that is
    // what defeats Autopilot), but every day must keep a diurnal
    // structure: a clear peak-to-trough swing, with the trough in
    // the small hours.
    TraceOptions opt;
    opt.seed = GetParam();
    for (const LoadTrace &t :
         {makeMessengerTrace(opt), makeHotmailTrace(opt)}) {
        for (int day = 0; day < t.daysCovered(); ++day) {
            double mn = 1e9, mx = 0.0;
            int argmax = -1;
            for (int h = 0; h < 24; ++h) {
                const double v = t.at(day, h);
                mn = std::min(mn, v);
                if (v > mx) {
                    mx = v;
                    argmax = h;
                }
            }
            EXPECT_GT(mx / mn, 2.0)
                << t.name() << " day " << day << " lacks diurnality";
            EXPECT_GE(argmax, 7) << t.name() << " day " << day;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, TraceProperty,
                         ::testing::Values(1, 7, 42, 1337, 99999));

// --------------------------------------------------------------------
// KMeans recovers k over a sweep of blob counts.
// --------------------------------------------------------------------

class KMeansProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(KMeansProperty, AutoKMatchesPlantedClusters)
{
    const int planted = GetParam();
    Dataset d({"x", "y"});
    Rng rng(17);
    for (int c = 0; c < planted; ++c)
        for (int i = 0; i < 25; ++i)
            d.add({c * 12.0 + 0.4 * rng.gaussian(),
                   (c % 2) * 9.0 + 0.4 * rng.gaussian()});
    KMeans::Config cfg;
    cfg.autoKMin = 2;
    cfg.autoKMax = 8;
    cfg.criterion = AutoKCriterion::Silhouette;
    KMeans km(Rng(19), cfg);
    EXPECT_EQ(km.runAuto(d).k, planted);
}

INSTANTIATE_TEST_SUITE_P(BlobCountSweep, KMeansProperty,
                         ::testing::Values(2, 3, 4, 5, 6));

} // namespace
} // namespace dejavu
