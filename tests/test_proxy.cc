/**
 * @file
 * Unit tests for the DejaVu proxy and its answer cache (the proxy
 * module).
 */

#include <gtest/gtest.h>

#include "proxy/answer_cache.hh"
#include "proxy/proxy.hh"

namespace dejavu {
namespace {

TEST(AnswerCache, StoresMostRecentAnswer)
{
    AnswerCache cache(8);
    cache.put(1, 100);
    cache.put(1, 200);  // overwrite: "the most recent answer"
    const auto hit = cache.get(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 200u);
}

TEST(AnswerCache, MissOnUnknownKey)
{
    AnswerCache cache(8);
    EXPECT_FALSE(cache.get(42).has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnswerCache, EvictsLeastRecentlyUsed)
{
    AnswerCache cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    (void)cache.get(1);   // 1 becomes most recent
    cache.put(3, 30);     // evicts 2
    EXPECT_TRUE(cache.get(1).has_value());
    EXPECT_FALSE(cache.get(2).has_value());
    EXPECT_TRUE(cache.get(3).has_value());
}

TEST(AnswerCache, HitRateAccounting)
{
    AnswerCache cache(4);
    cache.put(1, 10);
    (void)cache.get(1);
    (void)cache.get(2);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
    EXPECT_EQ(cache.stats().lookups, 2u);
}

TEST(AnswerCache, ClearEmptiesCache)
{
    AnswerCache cache(4);
    cache.put(1, 10);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get(1).has_value());
}

TEST(Proxy, SessionSamplingIsSticky)
{
    // A session is either always mirrored or never (§3.2.1).
    DejaVuProxy proxy(Rng(3));
    for (std::uint64_t s = 0; s < 50; ++s) {
        const bool first = proxy.sessionSampled(s);
        for (int rep = 0; rep < 5; ++rep)
            EXPECT_EQ(proxy.sessionSampled(s), first);
    }
}

TEST(Proxy, SampleFractionRoughlyRespected)
{
    DejaVuProxy::Config cfg;
    cfg.sessionSampleFraction = 0.10;
    DejaVuProxy proxy(Rng(5), cfg);
    int sampled = 0;
    const int n = 20000;
    for (std::uint64_t s = 0; s < n; ++s)
        if (proxy.sessionSampled(s))
            ++sampled;
    EXPECT_NEAR(static_cast<double>(sampled) / n, 0.10, 0.01);
}

TEST(Proxy, ProductionOverheadConstantWhenProfiling)
{
    DejaVuProxy proxy(Rng(7));
    const double overhead =
        proxy.onProductionRequest({1, 0xabc, false}, 7);
    EXPECT_DOUBLE_EQ(overhead, 3.0);  // §4.4's ~3 ms
}

TEST(Proxy, NoOverheadWhenProfilingDisabled)
{
    DejaVuProxy::Config cfg;
    cfg.profilingEnabled = false;
    DejaVuProxy proxy(Rng(9), cfg);
    EXPECT_DOUBLE_EQ(proxy.onProductionRequest({1, 0xabc, false}, 7),
                     0.0);
    EXPECT_EQ(proxy.stats().mirroredRequests, 0u);
}

TEST(Proxy, MirroredFractionTracksSampling)
{
    DejaVuProxy::Config cfg;
    cfg.sessionSampleFraction = 0.25;
    DejaVuProxy proxy(Rng(11), cfg);
    for (std::uint64_t s = 0; s < 4000; ++s)
        proxy.onProductionRequest({s, s * 31, false}, s);
    EXPECT_NEAR(proxy.observedMirrorFraction(), 0.25, 0.03);
}

TEST(Proxy, ProfilerRepliesResolveFromCache)
{
    DejaVuProxy::Config cfg;
    cfg.permutationMissRate = 0.0;
    DejaVuProxy proxy(Rng(13), cfg);
    proxy.onProductionRequest({1, 0x1111, false}, 99);
    EXPECT_TRUE(proxy.onProfilerRequest({1, 0x1111, false}));
    EXPECT_FALSE(proxy.onProfilerRequest({1, 0x9999, false}));
}

TEST(Proxy, PermutationMissesReduceHitRate)
{
    DejaVuProxy::Config cfg;
    cfg.permutationMissRate = 1.0;  // every request permuted
    DejaVuProxy proxy(Rng(15), cfg);
    proxy.onProductionRequest({1, 0x1111, false}, 99);
    EXPECT_FALSE(proxy.onProfilerRequest({1, 0x1111, false}));
}

TEST(Proxy, AnswerCacheLocalityUnderRealisticStream)
{
    // Production and profiler serve the same requests slightly
    // shifted in time: the cache must deliver a high hit rate
    // (§3.2.1: "the proxy's lookup table exhibits good locality").
    DejaVuProxy::Config cfg;
    cfg.permutationMissRate = 0.02;
    DejaVuProxy proxy(Rng(17), cfg);
    Rng rng(19);
    int hits = 0, lookups = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(
            rng.uniformInt(0, 500));  // zipf-ish small key space
        proxy.onProductionRequest({key % 100, key, false}, key * 7);
        if (i > 100) {  // profiler lags slightly behind
            ++lookups;
            if (proxy.onProfilerRequest({key % 100, key, false}))
                ++hits;
        }
    }
    EXPECT_GT(static_cast<double>(hits) / lookups, 0.9);
}

TEST(Proxy, NetworkOverheadMatchesPaperExample)
{
    // §4.4: 100 instances at a 1:10 inbound/outbound ratio => 0.1%.
    EXPECT_NEAR(DejaVuProxy::networkOverheadFraction(100, 0.1), 0.001,
                1e-12);
    EXPECT_NEAR(DejaVuProxy::networkOverheadFraction(10, 0.1), 0.01,
                1e-12);
}

TEST(ProxyDeath, BadConfig)
{
    DejaVuProxy::Config cfg;
    cfg.sessionSampleFraction = 0.0;
    EXPECT_DEATH(DejaVuProxy(Rng(1), cfg), "fraction");
}

} // namespace
} // namespace dejavu
