/**
 * @file
 * Unit tests for the deterministic RNG (common/random.hh).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"

namespace dejavu {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU32() == b.nextU32())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(13);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianParameterized)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(4.0);
        EXPECT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(37);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(41);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate)
{
    Rng rng(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(rng.bernoulli(0.0));
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(47);
    Rng a = parent.fork();
    Rng b = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextU32() == b.nextU32())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng p1(53), p2(53);
    Rng a = p1.fork();
    Rng b = p2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(SplitMix, KnownProgression)
{
    std::uint64_t s1 = 0, s2 = 0;
    const std::uint64_t a = splitmix64(s1);
    const std::uint64_t b = splitmix64(s2);
    EXPECT_EQ(a, b);        // deterministic
    EXPECT_NE(splitmix64(s1), a);  // state advances
}

} // namespace
} // namespace dejavu
