/**
 * @file
 * Unit tests for the DejaVu cache (core/repository.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/repository.hh"

namespace dejavu {
namespace {

TEST(Repository, StoreAndLookup)
{
    Repository repo;
    repo.store({0, 0}, {4, InstanceType::Large});
    const auto hit = repo.lookup({0, 0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, (ResourceAllocation{4, InstanceType::Large}));
}

TEST(Repository, MissOnUnknownKey)
{
    Repository repo;
    EXPECT_FALSE(repo.lookup({7, 0}).has_value());
    EXPECT_EQ(repo.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(repo.hitRate(), 0.0);
}

TEST(Repository, InterferenceBucketsAreDistinctKeys)
{
    Repository repo;
    repo.store({1, 0}, {3, InstanceType::Large});
    repo.store({1, 2}, {6, InstanceType::Large});
    EXPECT_EQ(repo.lookup({1, 0})->instances, 3);
    EXPECT_EQ(repo.lookup({1, 2})->instances, 6);
    EXPECT_FALSE(repo.lookup({1, 1}).has_value());
}

TEST(Repository, OverwriteUpdatesEntry)
{
    Repository repo;
    repo.store({0, 0}, {2, InstanceType::Large});
    repo.store({0, 0}, {5, InstanceType::Large});
    EXPECT_EQ(repo.entries(), 1u);
    EXPECT_EQ(repo.lookup({0, 0})->instances, 5);
}

TEST(Repository, HitRateAccounting)
{
    Repository repo;
    repo.store({0, 0}, {1, InstanceType::Large});
    (void)repo.lookup({0, 0});
    (void)repo.lookup({0, 0});
    (void)repo.lookup({9, 9});
    EXPECT_NEAR(repo.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Repository, PeekDoesNotCount)
{
    Repository repo;
    repo.store({0, 0}, {1, InstanceType::Large});
    (void)repo.peek({0, 0});
    (void)repo.peek({5, 5});
    EXPECT_EQ(repo.stats().lookups, 0u);
}

TEST(Repository, KeysSorted)
{
    Repository repo;
    repo.store({2, 0}, {1, InstanceType::Large});
    repo.store({0, 1}, {1, InstanceType::Large});
    repo.store({0, 0}, {1, InstanceType::Large});
    const auto keys = repo.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], (RepositoryKey{0, 0}));
    EXPECT_EQ(keys[1], (RepositoryKey{0, 1}));
    EXPECT_EQ(keys[2], (RepositoryKey{2, 0}));
}

TEST(Repository, ClearDropsEntriesKeepsStats)
{
    Repository repo;
    repo.store({0, 0}, {1, InstanceType::Large});
    (void)repo.lookup({0, 0});
    repo.clear();
    EXPECT_EQ(repo.entries(), 0u);
    EXPECT_EQ(repo.stats().hits, 1u);  // history preserved
    EXPECT_FALSE(repo.contains({0, 0}));
}

TEST(Repository, ToStringListsEntries)
{
    Repository repo;
    repo.store({1, 2}, {7, InstanceType::XLarge});
    const std::string s = repo.toString();
    EXPECT_NE(s.find("c1"), std::string::npos);
    EXPECT_NE(s.find("i2"), std::string::npos);
    EXPECT_NE(s.find("7xXL"), std::string::npos);
}

TEST(Repository, SaveLoadRoundTrip)
{
    Repository repo;
    repo.store({0, 0}, {4, InstanceType::Large});
    repo.store({1, 2}, {10, InstanceType::XLarge});
    std::ostringstream out;
    repo.save(out);

    std::istringstream in(out.str());
    Repository loaded = Repository::load(in);
    EXPECT_EQ(loaded.entries(), 2u);
    EXPECT_EQ(*loaded.peek({0, 0}),
              (ResourceAllocation{4, InstanceType::Large}));
    EXPECT_EQ(*loaded.peek({1, 2}),
              (ResourceAllocation{10, InstanceType::XLarge}));
    EXPECT_EQ(loaded.stats().lookups, 0u);  // stats not persisted
}

TEST(RepositoryDeathTest, LoadRejectsDuplicateRows)
{
    // Regression: load() used to silently let the last duplicate
    // (class,bucket) row win, hiding corrupted or badly merged
    // repository files.
    const std::string dup =
        "class,bucket,instances,type\n"
        "0,0,4,m1.large\n"
        "1,0,6,m1.large\n"
        "0,0,8,m1.xlarge\n";
    std::istringstream in(dup);
    EXPECT_EXIT((void)Repository::load(in),
                ::testing::ExitedWithCode(1), "duplicate");
}

} // namespace
} // namespace dejavu
