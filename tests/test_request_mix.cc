/**
 * @file
 * Unit tests for request mixes and client emulation
 * (workload/request_mix.hh, workload/client_emulator.hh).
 */

#include <gtest/gtest.h>

#include "workload/client_emulator.hh"
#include "workload/request_mix.hh"

namespace dejavu {
namespace {

TEST(RequestMix, CatalogIsComplete)
{
    const auto mixes = allMixes();
    EXPECT_EQ(mixes.size(), 12u);
    for (const auto &m : mixes) {
        EXPECT_FALSE(m.name.empty());
        EXPECT_GE(m.readFraction, 0.0);
        EXPECT_LE(m.readFraction, 1.0);
        EXPECT_GT(m.cpuWeight, 0.0);
        EXPECT_GT(m.memWeight, 0.0);
        EXPECT_GT(m.ioWeight, 0.0);
        EXPECT_GE(m.staticFraction, 0.0);
        EXPECT_LE(m.staticFraction, 1.0);
    }
}

TEST(RequestMix, PaperMixProperties)
{
    // §4.1: update-heavy = 95% writes, 5% reads.
    EXPECT_DOUBLE_EQ(cassandraUpdateHeavy().readFraction, 0.05);
    // §4.2: support is read-only and I/O-intensive.
    EXPECT_DOUBLE_EQ(specwebSupport().readFraction, 1.0);
    EXPECT_GT(specwebSupport().ioWeight, specwebBanking().ioWeight);
    // Banking is the most CPU-intensive web mix (HTTPS-like).
    EXPECT_GT(specwebBanking().cpuWeight, specwebSupport().cpuWeight);
    // YCSB core mixes: A is 50/50, B is 95/5, C is read-only, D is
    // read-latest (95/5 inserts, the most memory-pressured mix).
    EXPECT_DOUBLE_EQ(ycsbUpdateHeavy().readFraction, 0.50);
    EXPECT_DOUBLE_EQ(ycsbReadHeavy().readFraction, 0.95);
    EXPECT_DOUBLE_EQ(ycsbReadOnly().readFraction, 1.0);
    EXPECT_DOUBLE_EQ(ycsbReadLatest().readFraction, 0.95);
    EXPECT_GT(ycsbReadLatest().memWeight, ycsbReadHeavy().memWeight);
}

TEST(RequestMix, EqualityByName)
{
    EXPECT_EQ(cassandraUpdateHeavy(), cassandraUpdateHeavy());
    EXPECT_FALSE(cassandraUpdateHeavy() == cassandraReadHeavy());
}

TEST(ClientEmulator, LinearRate)
{
    ClientEmulator e;
    EXPECT_DOUBLE_EQ(e.offeredRate(0.0), 0.0);
    EXPECT_DOUBLE_EQ(e.offeredRate(700.0), 100.0);  // 7 s think time
}

TEST(ClientEmulator, InverseMapping)
{
    ClientEmulator e;
    const double clients = 1234.0;
    EXPECT_NEAR(e.clientsForRate(e.offeredRate(clients)), clients,
                1e-9);
}

TEST(ClientEmulator, CustomThinkTime)
{
    ClientEmulator::Config cfg;
    cfg.thinkTimeSeconds = 2.0;
    ClientEmulator e(cfg);
    EXPECT_DOUBLE_EQ(e.offeredRate(100.0), 50.0);
}

TEST(ClientEmulator, SampleJitterIsBounded)
{
    ClientEmulator::Config cfg;
    cfg.jitter = 0.05;
    ClientEmulator e(cfg, Rng(3));
    const double mean = e.offeredRate(7000.0);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const double s = e.sampleRate(7000.0);
        EXPECT_GT(s, mean * 0.7);
        EXPECT_LT(s, mean * 1.3);
        sum += s;
    }
    EXPECT_NEAR(sum / 1000.0, mean, mean * 0.01);
}

TEST(ClientEmulatorDeath, NegativeClients)
{
    ClientEmulator e;
    EXPECT_DEATH(e.offeredRate(-1.0), "negative");
}

} // namespace
} // namespace dejavu
