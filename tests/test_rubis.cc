/**
 * @file
 * Unit tests for the RUBiS three-tier model and its interaction
 * catalog / session generator (services/rubis_service.hh).
 */

#include <gtest/gtest.h>

#include <set>

#include "services/rubis_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

TEST(RubisCatalog, HasTwentySixInteractions)
{
    // "RUBiS defines 26 client interactions" (§4).
    EXPECT_EQ(rubisInteractions().size(),
              static_cast<std::size_t>(kNumRubisInteractions));
    EXPECT_EQ(kNumRubisInteractions, 26);
}

TEST(RubisCatalog, IdsMatchIndices)
{
    const auto &catalog = rubisInteractions();
    for (std::size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(static_cast<int>(catalog[i].id), static_cast<int>(i));
}

TEST(RubisCatalog, WeightsFormDistribution)
{
    double total = 0.0;
    for (const auto &info : rubisInteractions()) {
        EXPECT_GT(info.weight, 0.0);
        total += info.weight;
    }
    EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(RubisCatalog, WriteInteractionsAreDbHeavy)
{
    // Store* and Register* mutate the database and must demand more
    // DB work than the average read.
    const auto &catalog = rubisInteractions();
    double writeDb = 0.0, readDb = 0.0;
    int writes = 0, reads = 0;
    for (const auto &info : catalog) {
        if (info.write) {
            writeDb += info.dbDemand;
            ++writes;
        } else {
            readDb += info.dbDemand;
            ++reads;
        }
    }
    EXPECT_GT(writeDb / writes, readDb / reads);
}

TEST(RubisSession, StartsAtHomeAndTerminates)
{
    RubisSessionGenerator gen(Rng(3));
    for (int s = 0; s < 50; ++s) {
        const auto session = gen.nextSession();
        ASSERT_FALSE(session.empty());
        EXPECT_EQ(session.front(), RubisInteraction::Home);
        EXPECT_LE(session.size(), 64u);
    }
}

TEST(RubisSession, AuthFlowsChainToStores)
{
    // PutBidAuth must always be followed by PutBid.
    RubisSessionGenerator gen(Rng(5));
    int authSeen = 0;
    for (int s = 0; s < 500; ++s) {
        const auto session = gen.nextSession();
        for (std::size_t i = 0; i + 1 < session.size(); ++i) {
            if (session[i] == RubisInteraction::PutBidAuth) {
                ++authSeen;
                EXPECT_EQ(session[i + 1], RubisInteraction::PutBid);
            }
        }
    }
    EXPECT_GT(authSeen, 0);
}

TEST(RubisSession, CoversMostInteractions)
{
    RubisSessionGenerator gen(Rng(7));
    std::set<RubisInteraction> seen;
    for (int s = 0; s < 2000; ++s)
        for (RubisInteraction ri : gen.nextSession())
            seen.insert(ri);
    EXPECT_GE(seen.size(), 24u);
}

TEST(RubisSession, EmpiricalMixTracksWriteBias)
{
    RubisSessionGenerator browsing(Rng(9), /*writeBias=*/0.2);
    RubisSessionGenerator bidding(Rng(9), /*writeBias=*/3.0);
    const RequestMix lite = browsing.empiricalMix(300);
    const RequestMix heavy = bidding.empiricalMix(300);
    EXPECT_GT(lite.readFraction, heavy.readFraction);
}

class RubisServiceTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    RubisService service{queue, cluster, Rng(11)};
};

TEST_F(RubisServiceTest, TierUtilizationsTrackLoad)
{
    cluster.setActiveInstances(5);
    queue.runUntil(minutes(1));
    service.setWorkload({rubisBidding(), 2000.0});
    const auto low = service.tierUtilizations();
    service.setWorkload({rubisBidding(), 8000.0});
    const auto high = service.tierUtilizations();
    for (int t = 0; t < 3; ++t)
        EXPECT_GT(high[static_cast<std::size_t>(t)],
                  low[static_cast<std::size_t>(t)]);
}

TEST_F(RubisServiceTest, BottleneckBoundsCapacity)
{
    // Aggregate capacity equals the min tier capacity.
    const RequestMix mix = rubisBidding();
    const double cap = service.capacityPerEcu(mix);
    EXPECT_GT(cap, 0.0);
    // Browsing (read-only, more static) is cheaper than bidding.
    EXPECT_GT(service.capacityPerEcu(rubisBrowsing()), cap);
}

TEST_F(RubisServiceTest, LatencySumsTierContributions)
{
    const double base = service.baseLatencyMs(rubisBidding());
    // Three tiers, each >= its configured floor.
    EXPECT_GT(base, 15.0);
    EXPECT_LT(base, 120.0);
}

TEST_F(RubisServiceTest, WritesStressDbTier)
{
    RequestMix writeHeavy = rubisBidding();
    writeHeavy.readFraction = 0.5;
    const RequestMix readOnly = rubisBrowsing();
    // Write-heavy mixes saturate the DB tier earlier.
    EXPECT_LT(service.capacityPerEcu(writeHeavy),
              service.capacityPerEcu(readOnly));
}

} // namespace
} // namespace dejavu
