/**
 * @file
 * Tests for the parallel experiment engine: cartesian grids, ordered
 * merges, and bit-identical results at any thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "experiments/runner.hh"

namespace dejavu {
namespace {

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

  private:
    LogLevel _before = LogLevel::Info;
};

TEST(RunnerGrid, CartesianProductInOrder)
{
    const auto cells = ExperimentRunner::grid(
        {"s1", "s2"}, {"p1", "p2"}, {7, 8});
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].toString(), "s1/p1/s7");
    EXPECT_EQ(cells[1].toString(), "s1/p1/s8");
    EXPECT_EQ(cells[2].toString(), "s1/p2/s7");
    EXPECT_EQ(cells[7].toString(), "s2/p2/s8");
}

TEST(RunnerSweep, ResultsInInputOrderRegardlessOfCompletion)
{
    // Cells finish in reverse order (later cells are quicker), but
    // the merge must follow input order.
    std::vector<SweepCell> cells;
    for (int i = 0; i < 16; ++i)
        cells.push_back({"scenario", "p" + std::to_string(i),
                         static_cast<std::uint64_t>(i)});

    std::atomic<int> running{0};
    const auto fn = [&](const SweepCell &cell) {
        ++running;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(16 - cell.seed));
        ExperimentResult r;
        r.policyName = cell.policy;
        r.costDollars = static_cast<double>(cell.seed);
        return r;
    };
    const auto results =
        ExperimentRunner(ExperimentRunner::Config(8)).sweep(cells, fn);
    EXPECT_EQ(running.load(), 16);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].cell.toString(), cells[i].toString());
        EXPECT_EQ(results[i].result.policyName, cells[i].policy);
        EXPECT_DOUBLE_EQ(results[i].result.costDollars,
                         static_cast<double>(i));
    }
}

TEST(RunnerSweep, ThreadCountDefaultsToHardware)
{
    ExperimentRunner runner;
    EXPECT_GE(runner.threads(), 1);
    ExperimentRunner one(ExperimentRunner::Config(1));
    EXPECT_EQ(one.threads(), 1);
}

using RunnerIntegration = QuietLogs;

TEST_F(RunnerIntegration, BitIdenticalAcrossThreadCounts)
{
    // The ISSUE acceptance bar: a >= 3 policy x >= 4 seed sweep must
    // produce byte-identical aggregates at 1 and 8 threads (and the
    // full per-cell series must match, not just the digest).
    const auto cells = ExperimentRunner::grid(
        {"cassandra-messenger"},
        {"dejavu", "autopilot", "rightscale-3m"}, {1, 2, 3, 4});

    auto runAt = [&](int threads) {
        return ExperimentRunner(ExperimentRunner::Config(threads))
            .sweep(cells, runStandardCell);
    };
    const auto at1 = runAt(1);
    const auto at4 = runAt(4);
    const auto at8 = runAt(8);

    const std::string digest1 = sweepCsv(aggregateSweep(at1));
    EXPECT_EQ(digest1, sweepCsv(aggregateSweep(at4)));
    EXPECT_EQ(digest1, sweepCsv(aggregateSweep(at8)));

    for (std::size_t i = 0; i < at1.size(); ++i) {
        const auto &a = at1[i].result;
        const auto &b = at8[i].result;
        EXPECT_DOUBLE_EQ(a.costDollars, b.costDollars);
        EXPECT_DOUBLE_EQ(a.sloViolationFraction,
                         b.sloViolationFraction);
        EXPECT_DOUBLE_EQ(a.savingsPercent, b.savingsPercent);
        ASSERT_EQ(a.latencyMs.size(), b.latencyMs.size());
        for (std::size_t k = 0; k < a.latencyMs.size(); ++k) {
            EXPECT_DOUBLE_EQ(a.latencyMs[k].timeHours,
                             b.latencyMs[k].timeHours);
            EXPECT_DOUBLE_EQ(a.latencyMs[k].value,
                             b.latencyMs[k].value);
        }
    }
}

TEST_F(RunnerIntegration, FleetPolicySweepBitIdenticalAcrossThreads)
{
    // Scheduler-policy determinism: a (policy x seed) fleet sweep on
    // a 9-service mixed fleet must digest byte-identically at 1, 4
    // and 8 runner threads — slot scheduling is pure simulation
    // state, never wall clock.
    const auto cells = ExperimentRunner::grid(
        {"fleet-mixed-9"}, slotPolicyNames(), {1, 2});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));
    // Every (scenario, policy, seed) row made it into the digest
    // with a populated tail.
    EXPECT_EQ(std::count(digest1.begin(), digest1.end(), '\n'),
              static_cast<std::ptrdiff_t>(cells.size() + 1));
    EXPECT_NE(digest1.find("fleet-mixed-9,sjf,1,9,1,private,216"),
              std::string::npos);
}

TEST_F(RunnerIntegration, HundredServicePoolSweepBitIdentical)
{
    // The ISSUE acceptance bar: the 100-service 4-host cell must
    // digest byte-identically at 1, 4 and 8 runner threads. Two
    // policies keep the 100-service cells affordable while still
    // exercising cross-thread scheduling of multiple cells.
    const auto cells = ExperimentRunner::grid(
        {"fleet-mixed-100-h4"}, {"fifo", "adaptive"}, {42});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));
    // 24 reuse hours x 100 services, 4-host pool recorded in the CSV.
    EXPECT_NE(digest1.find(
                  "fleet-mixed-100-h4,fifo,42,100,4,private,2400"),
              std::string::npos);
}

TEST_F(RunnerIntegration, FleetScenarioParsesHostPoolSuffix)
{
    auto stack = makeFleetScenario("fleet-mixed-3-h2", 42,
                                   SlotPolicy::Fifo);
    EXPECT_EQ(stack->members.size(), 3u);
    EXPECT_EQ(stack->experiment->fleet().profilingHosts(), 2);
    // Default pool size is the paper's single dedicated machine.
    auto single = makeFleetScenario("fleet-mixed-3", 42,
                                    SlotPolicy::Fifo);
    EXPECT_EQ(single->experiment->fleet().profilingHosts(), 1);
}

TEST_F(RunnerIntegration, FleetScenarioParsesSharingSuffix)
{
    // Default: today's private per-controller repositories.
    auto def = makeFleetScenario("fleet-mixed-3-h2", 42,
                                 SlotPolicy::Fifo);
    EXPECT_EQ(def->experiment->sharing(), RepositorySharing::Private);
    EXPECT_EQ(def->experiment->sharedRepository(), nullptr);

    auto shared = makeFleetScenario("fleet-mixed-3-h2-shared", 42,
                                    SlotPolicy::Fifo);
    EXPECT_EQ(shared->experiment->sharing(),
              RepositorySharing::Shared);
    ASSERT_NE(shared->experiment->sharedRepository(), nullptr);
    EXPECT_EQ(shared->experiment->sharedRepository()->attachments(),
              3);
    EXPECT_EQ(shared->members.size(), 3u);
    EXPECT_EQ(shared->experiment->fleet().profilingHosts(), 2);

    // The sharing suffix composes with a missing host suffix, and
    // an explicit "-private" is accepted.
    auto noHosts = makeFleetScenario("fleet-cassandra-4-isolated", 42,
                                     SlotPolicy::Fifo);
    EXPECT_EQ(noHosts->experiment->sharing(),
              RepositorySharing::Isolated);
    EXPECT_EQ(noHosts->experiment->fleet().profilingHosts(), 1);
    auto priv = makeFleetScenario("fleet-mixed-3-private", 42,
                                  SlotPolicy::Fifo);
    EXPECT_EQ(priv->experiment->sharing(),
              RepositorySharing::Private);
}

TEST_F(RunnerIntegration, SharedFleetSweepBitIdenticalAcrossThreads)
{
    // The sharing axis must not disturb determinism: shared and
    // private cells of one sweep digest byte-identically at 1, 4
    // and 8 runner threads.
    const auto cells = ExperimentRunner::grid(
        {"fleet-mixed-9-shared", "fleet-mixed-9-private"},
        {"fifo", "sjf"}, {1});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));
    EXPECT_NE(digest1.find("fleet-mixed-9-shared,fifo,1,9,1,shared"),
              std::string::npos);
    EXPECT_NE(
        digest1.find("fleet-mixed-9-private,fifo,1,9,1,private"),
        std::string::npos);
}

TEST_F(RunnerIntegration, FleetScenarioParsesWorkModeAndJitter)
{
    // Default: the legacy routing (pre-work-queue behavior).
    auto def = makeFleetScenario("fleet-mixed-3-h2-shared", 42,
                                 SlotPolicy::Fifo);
    EXPECT_EQ(def->experiment->workMode(), ProfilingWorkMode::Legacy);
    for (const auto &member : def->members) {
        EXPECT_EQ(member->arrivalOffset, 0);
        EXPECT_EQ(member->injector, nullptr);
    }

    // All suffixes compose in canonical order:
    // -h<M> -<sharing> -<workmode> -jit +interference.
    auto full = makeFleetScenario(
        "fleet-mixed-3-h2-shared-wq-jit+interference", 42,
        SlotPolicy::Fifo);
    EXPECT_EQ(full->experiment->workMode(),
              ProfilingWorkMode::WorkQueue);
    EXPECT_EQ(full->experiment->sharing(), RepositorySharing::Shared);
    EXPECT_EQ(full->experiment->fleet().profilingHosts(), 2);
    EXPECT_EQ(full->members.size(), 3u);
    bool anyOffset = false;
    for (const auto &member : full->members) {
        EXPECT_LT(member->arrivalOffset, kDefaultJitterSpread);
        anyOffset = anyOffset || member->arrivalOffset > 0;
        EXPECT_NE(member->injector, nullptr);
    }
    EXPECT_TRUE(anyOffset);
    // The wq fleet coalesces and cancels only under sharing.
    EXPECT_TRUE(full->experiment->fleet()
                    .workOptions().coalesceSignatures);
    auto wqPrivate = makeFleetScenario("fleet-mixed-3-wq", 42,
                                       SlotPolicy::Fifo);
    EXPECT_EQ(wqPrivate->experiment->workMode(),
              ProfilingWorkMode::WorkQueue);
    EXPECT_FALSE(wqPrivate->experiment->fleet()
                     .workOptions().coalesceSignatures);

    // An explicit "-legacy" is accepted too.
    auto legacy = makeFleetScenario("fleet-cassandra-4-legacy", 42,
                                    SlotPolicy::Fifo);
    EXPECT_EQ(legacy->experiment->workMode(),
              ProfilingWorkMode::Legacy);
}

TEST_F(RunnerIntegration, WorkQueueSweepBitIdenticalAcrossThreads)
{
    // The work-queue model must not disturb determinism: coalesced
    // and jittered cells of one sweep digest byte-identically at 1,
    // 4 and 8 runner threads.
    const auto cells = ExperimentRunner::grid(
        {"fleet-mixed-9-shared-wq", "fleet-mixed-9-private-wq",
         "fleet-mixed-9-shared-wq-jit"},
        {"fifo", "adaptive"}, {1});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));
    // The digest carries the work-mode column and the shared cell
    // actually coalesced (nonzero "coalesced" column is asserted in
    // test_fleet_experiment; here the mode tag suffices).
    EXPECT_NE(digest1.find("fleet-mixed-9-shared-wq,fifo,1,9,1,shared"),
              std::string::npos);
    EXPECT_NE(digest1.find(",wq,"), std::string::npos);
}

TEST_F(RunnerIntegration, FleetCellRejectsMalformedScenarios)
{
    EXPECT_EXIT(makeFleetScenario("fleet-mixed-9-h0", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "at least one host");
    EXPECT_EXIT(makeFleetScenario("mixed-10", 1, SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "fleet-");
    EXPECT_EXIT(makeFleetScenario("fleet-mixed", 1, SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "fleet scenario");
    EXPECT_EXIT(makeFleetScenario("fleet-lustre-4", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "unknown fleet mix");
    EXPECT_EXIT(makeFleetScenario("fleet-mixed-0", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "at least one");
    // Trailing garbage must not silently parse as a smaller fleet.
    EXPECT_EXIT(makeFleetScenario("fleet-mixed-9x", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1), "bad fleet size");
    // A typo'd "+" suffix must fail loudly with the full grammar —
    // never fold into the mix or size token.
    EXPECT_EXIT(makeFleetScenario("fleet-ycsb-9+daemonz", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1),
                "unknown '\\+' suffix.*the shape is");
    EXPECT_EXIT(makeFleetScenario("fleet-mixed-9+interference+late", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1),
                "unknown '\\+' suffix.*fleet-<mix>-<N>");
}

TEST_F(RunnerIntegration, AggregateGroupsByScenarioAndPolicy)
{
    const auto cells = ExperimentRunner::grid(
        {"cassandra-messenger"}, {"dejavu", "autopilot"}, {1, 2});
    const auto results =
        ExperimentRunner(ExperimentRunner::Config(4))
            .sweep(cells, runStandardCell);
    const auto aggregates = aggregateSweep(results);
    ASSERT_EQ(aggregates.size(), 2u);
    EXPECT_EQ(aggregates[0].policy, "dejavu");
    EXPECT_EQ(aggregates[0].cells, 2);
    EXPECT_EQ(aggregates[1].policy, "autopilot");
    EXPECT_EQ(aggregates[1].cells, 2);
    // DejaVu must beat the schedule-replay baseline on SLO quality.
    EXPECT_LT(aggregates[0].sloViolationPercent.mean(),
              aggregates[1].sloViolationPercent.mean());
}

TEST_F(RunnerIntegration, StandardCellCoversEveryPolicy)
{
    for (const char *policy :
         {"dejavu", "overprovision", "reactive-tuning"}) {
        const ExperimentResult r =
            runStandardCell({"cassandra-messenger", policy, 42});
        EXPECT_FALSE(r.latencyMs.empty()) << policy;
        EXPECT_GT(r.costDollars, 0.0) << policy;
    }
    // Overprovision pins max capacity: zero savings by construction.
    const ExperimentResult over =
        runStandardCell({"cassandra-messenger", "overprovision", 42});
    EXPECT_NEAR(over.savingsPercent, 0.0, 1.0);
}

TEST_F(RunnerIntegration, UnknownScenarioOrPolicyIsFatal)
{
    EXPECT_EXIT(runStandardCell({"nonsense", "dejavu", 1}),
                ::testing::ExitedWithCode(1), "scenario");
    EXPECT_EXIT(runStandardCell({"cassandra-messenger", "nope", 1}),
                ::testing::ExitedWithCode(1), "unknown policy");
}

} // namespace
} // namespace dejavu
