/**
 * @file
 * Conformance suite for the scenario families the sim had never seen:
 * YCSB-style mixes, background-daemon co-runners, multi-level
 * interference bucket threading (controller -> proxy), and host-loss
 * fault injection. Pins digest determinism at 1/4/8 runner threads
 * per family, daemon duty-cycle mechanics, exact bucket publication,
 * and the no-orphaned-work invariant after host-loss schedules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/controller.hh"
#include "counters/profiler.hh"
#include "experiments/runner.hh"
#include "proxy/proxy.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/daemon.hh"
#include "sim/event_queue.hh"
#include "sim/interference.hh"

namespace dejavu {
namespace {

class QuietLogs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

  private:
    LogLevel _before = LogLevel::Info;
};

using ScenarioFamilies = QuietLogs;

// --------------------------------------------------------------------
// Digest determinism: every new family must produce byte-identical
// sweep digests at 1, 4 and 8 runner threads (the repo's standing
// acceptance bar, extended to ycsb / +daemons / +hostloss cells).
// --------------------------------------------------------------------

TEST_F(ScenarioFamilies, NewFamiliesDigestIdenticallyAcrossThreads)
{
    const auto cells = ExperimentRunner::grid(
        {"fleet-ycsb-8", "fleet-ycsb-8+daemons",
         "fleet-mixed-9+daemons+hostloss",
         "fleet-ycsb-8+daemons+hostloss", "fleet-ycsb-6-h2+hostloss"},
        {"fifo"}, {1});

    auto digestAt = [&](int threads) {
        const auto summaries =
            ExperimentRunner(ExperimentRunner::Config(threads))
                .sweepInto(cells, runFleetCell);
        std::vector<FleetCellResult> rows;
        for (std::size_t i = 0; i < cells.size(); ++i)
            rows.push_back({cells[i], summaries[i]});
        return fleetSweepCsv(rows);
    };

    const std::string digest1 = digestAt(1);
    EXPECT_EQ(digest1, digestAt(4));
    EXPECT_EQ(digest1, digestAt(8));
    // One row per cell plus the header.
    EXPECT_EQ(std::count(digest1.begin(), digest1.end(), '\n'),
              static_cast<std::ptrdiff_t>(cells.size() + 1));
    // The ycsb family lands in the digest under private sharing (its
    // default: one kind spanning four mixes must not share a table).
    EXPECT_NE(digest1.find("fleet-ycsb-8,fifo,1,8,1,private,"),
              std::string::npos);
    // The digest carries the P99.9 adaptation-tail columns.
    EXPECT_NE(digest1.find("queue_p999_s"), std::string::npos);
    EXPECT_NE(digest1.find("adapt_p999_s"), std::string::npos);
}

// --------------------------------------------------------------------
// Host-loss conformance: the fleet keeps adapting through the
// kill/restore schedule, every failed host comes back, and no work
// item is ever stranded in Granted state without a live grant.
// --------------------------------------------------------------------

TEST_F(ScenarioFamilies, HostLossCellsAdaptWithoutOrphanedWork)
{
    const auto summary =
        runFleetCell({"fleet-ycsb-8+daemons+hostloss", "fifo", 1});
    EXPECT_GT(summary.adaptations, 0u);
    EXPECT_EQ(summary.orphanedItems, 0u);
    // The 6-hourly schedule lands several kills inside the 2-day
    // horizon, and every 45-minute outage ends before it.
    EXPECT_GE(summary.hostsFailed, 3u);
    EXPECT_EQ(summary.hostsFailed, summary.hostsRestored);
}

TEST_F(ScenarioFamilies, HostLossSurvivesMultiHostPools)
{
    // M = 2: kills rotate round-robin over the pool, so both hosts
    // take a turn dying while the other keeps granting slots.
    const auto summary =
        runFleetCell({"fleet-ycsb-6-h2+hostloss", "fifo", 1});
    EXPECT_EQ(summary.hosts, 2);
    EXPECT_GT(summary.adaptations, 0u);
    EXPECT_EQ(summary.orphanedItems, 0u);
    EXPECT_GE(summary.hostsFailed, 3u);
    EXPECT_EQ(summary.hostsFailed, summary.hostsRestored);
}

// --------------------------------------------------------------------
// Builder and grammar wiring of the new families.
// --------------------------------------------------------------------

TEST_F(ScenarioFamilies, YcsbFleetBuildsFourMixFamily)
{
    auto stack =
        makeFleetScenario("fleet-ycsb-4", 7, SlotPolicy::Fifo);
    ASSERT_EQ(stack->members.size(), 4u);
    for (const auto &member : stack->members) {
        EXPECT_EQ(member->service->kind(), ServiceKind::Ycsb);
        EXPECT_EQ(member->injector, nullptr);
        EXPECT_EQ(member->daemon, nullptr);
    }
    EXPECT_EQ(stack->hostLoss, nullptr);
    EXPECT_EQ(stack->experiment->sharing(),
              RepositorySharing::Private);
}

TEST_F(ScenarioFamilies, PlusSuffixesComposeInAnyOrder)
{
    auto stack = makeFleetScenario("fleet-ycsb-3+hostloss+daemons", 7,
                                   SlotPolicy::Fifo);
    ASSERT_EQ(stack->members.size(), 3u);
    for (const auto &member : stack->members) {
        EXPECT_NE(member->daemon, nullptr);
        EXPECT_EQ(member->injector, nullptr);
    }
    ASSERT_NE(stack->hostLoss, nullptr);
    EXPECT_TRUE(stack->hostLoss->enabled());

    // The §4.3 injector and the daemon are distinct mechanisms and
    // coexist on the same members.
    auto both = makeFleetScenario("fleet-mixed-3+interference+daemons",
                                  7, SlotPolicy::Fifo);
    for (const auto &member : both->members) {
        EXPECT_NE(member->injector, nullptr);
        EXPECT_NE(member->daemon, nullptr);
    }
    EXPECT_EQ(both->hostLoss, nullptr);
}

using ScenarioFamiliesDeath = QuietLogs;

TEST_F(ScenarioFamiliesDeath, UnknownPlusSuffixIsFatalWithGrammar)
{
    // A typo'd "+" suffix must fail loudly with the full grammar, not
    // fold into the mix or size token.
    EXPECT_EXIT(makeFleetScenario("fleet-ycsb-8+daemon", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1),
                "unknown '\\+' suffix.*the shape is");
    EXPECT_EXIT(makeFleetScenario("fleet-mixed-9+hostloss+bogus", 1,
                                  SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1),
                "unknown '\\+' suffix.*the shape is");
    // The unknown-mix path also names the grammar now.
    EXPECT_EXIT(makeFleetScenario("fleet-tpcc-8", 1, SlotPolicy::Fifo),
                ::testing::ExitedWithCode(1),
                "unknown fleet mix.*the scenario shape is");
}

// --------------------------------------------------------------------
// Daemon co-runner mechanics.
// --------------------------------------------------------------------

TEST(DaemonCoRunner, DutyCycleAppliesAndClearsTierTheft)
{
    EventQueue q;
    Cluster c(q, {});
    DaemonCoRunner::Config cfg;  // tiers {0.15, 0.45}, 1 h, duty 0.25
    DaemonCoRunner daemon(q, c, cfg, Rng(21));

    // Sample one VM's daemon theft every simulated minute for 4 hours:
    // the duty cycle must visit both pressure tiers and the idle gap.
    std::vector<double> seen;
    for (int m = 0; m < 240; ++m)
        q.schedule(minutes(m),
                   [&] { seen.push_back(c.vm(0).daemonTheft()); });
    daemon.start();
    q.runUntil(hours(4) + seconds(1));

    auto count = [&](double level) {
        return std::count(seen.begin(), seen.end(), level);
    };
    EXPECT_GT(count(0.0), 0);
    EXPECT_GT(count(0.15), 0);
    EXPECT_GT(count(0.45), 0);
    EXPECT_GE(daemon.scansCompleted(), 3u);
}

TEST(DaemonCoRunner, TheftSurvivesInjectorStop)
{
    EventQueue q;
    Cluster c(q, {});
    DaemonCoRunner::Config cfg;
    cfg.scanTheft = {0.25};
    cfg.dutyCycle = 1.0;  // always scanning: theft is pinned at 0.25
    DaemonCoRunner daemon(q, c, cfg, Rng(3));
    daemon.start();
    q.runUntil(hours(2));
    EXPECT_DOUBLE_EQ(c.vm(0).daemonTheft(), 0.25);

    // The §4.3 injector composes multiplicatively on top...
    InterferenceInjector::Config icfg;
    icfg.levels = {0.10};
    icfg.contentionMultiplier = 1.0;
    InterferenceInjector injector(q, c, icfg, Rng(5));
    injector.applyOnce();
    EXPECT_DOUBLE_EQ(c.vm(0).interference(),
                     1.0 - (1.0 - 0.10) * (1.0 - 0.25));

    // ...and stopping it leaves the daemon channel exactly intact:
    // daemons are host software, not a workload phase.
    injector.stop();
    EXPECT_DOUBLE_EQ(c.vm(0).interference(), 0.25);
    daemon.stop();
    EXPECT_DOUBLE_EQ(c.vm(0).interference(), 0.0);
}

TEST(DaemonCoRunner, DisabledDaemonNeverTouchesVms)
{
    EventQueue q;
    Cluster c(q, {});
    DaemonCoRunner::Config cfg;
    cfg.enabled = false;
    DaemonCoRunner daemon(q, c, cfg, Rng(9));
    daemon.start();
    q.runUntil(hours(6));
    for (int i = 0; i < c.poolSize(); ++i)
        EXPECT_DOUBLE_EQ(c.vm(i).daemonTheft(), 0.0);
    EXPECT_EQ(daemon.scansCompleted(), 0u);
}

// --------------------------------------------------------------------
// Controller -> proxy interference-bucket threading.
// --------------------------------------------------------------------

TEST(ProxyBucketTagging, MirroredTrafficCountedUnderCurrentBucket)
{
    // Rng(15)'s session salt samples 38 of the 200 session ids below
    // (seed 11 would sample none — sampling is per-session stable).
    DejaVuProxy proxy(Rng(15));
    EXPECT_EQ(proxy.interferenceBucket(), 0);
    auto pump = [&](std::uint64_t sessions) {
        for (std::uint64_t s = 0; s < sessions; ++s)
            for (std::uint64_t r = 0; r < 5; ++r)
                proxy.onProductionRequest({s, s * 31 + r, false}, 7);
    };

    pump(200);
    const auto &stats = proxy.stats();
    ASSERT_GE(stats.mirroredByBucket.size(), 1u);
    EXPECT_GT(stats.mirroredRequests, 0u);
    EXPECT_EQ(stats.mirroredByBucket[0], stats.mirroredRequests);

    // Escalate to bucket 2: the same session population mirrors the
    // same requests, now tagged under the new bucket.
    proxy.setInterferenceBucket(2);
    const auto before = stats.mirroredRequests;
    pump(200);
    ASSERT_GE(stats.mirroredByBucket.size(), 3u);
    EXPECT_EQ(stats.mirroredByBucket[2], stats.mirroredRequests - before);
    EXPECT_EQ(stats.mirroredByBucket[2], stats.mirroredByBucket[0]);
    EXPECT_EQ(stats.mirroredByBucket[1], 0u);

    std::uint64_t total = 0;
    for (const auto n : stats.mirroredByBucket)
        total += n;
    EXPECT_EQ(total, stats.mirroredRequests);
}

TEST(ProxyBucketTaggingDeath, NegativeBucketIsFatal)
{
    DejaVuProxy proxy(Rng(11));
    EXPECT_DEATH(proxy.setInterferenceBucket(-1),
                 "negative interference bucket");
}

class BucketThreadingTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    ProfilerHost profiler{
        service,
        Monitor(service, CounterModel(ServiceKind::KeyValue, Rng(5))),
        Rng(7)};

    DejaVuController::Config config()
    {
        DejaVuController::Config cfg;
        cfg.slo = Slo::latency(60.0);
        cfg.searchSpace = scaleOutSearchSpace(10);
        return cfg;
    }

    std::vector<Workload> learningSet()
    {
        std::vector<Workload> w;
        for (double clients : {3000.0, 3500.0, 9000.0, 9500.0,
                               20000.0, 21000.0, 33000.0, 34000.0})
            w.push_back({cassandraUpdateHeavy(), clients});
        return w;
    }
};

TEST_F(BucketThreadingTest, ControllerPublishesEscalationToProxy)
{
    DejaVuController dv(service, profiler, config(), Rng(23));
    DejaVuProxy proxy(Rng(15));
    dv.learn(learningSet());
    dv.attachProxy(&proxy);
    EXPECT_EQ(proxy.interferenceBucket(), dv.interferenceBucket());
    EXPECT_EQ(proxy.interferenceBucket(), 0);

    const Workload w{cassandraUpdateHeavy(), 20000.0};
    service.setWorkload(w);
    dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));

    // Co-located tenants appear; two violating samples trigger the
    // §3.6 escalation, and the proxy must see the bucket transition.
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.20);
    Service::PerfSample bad;
    bad.meanLatencyMs = service.meanLatencyMs();
    bad.qosPercent = 99.0;
    ASSERT_GT(bad.meanLatencyMs, 60.0);
    (void)dv.onSloFeedback(bad);
    const auto reaction = dv.onSloFeedback(bad);
    ASSERT_TRUE(reaction.has_value());
    EXPECT_EQ(reaction->kind,
              DejaVuController::DecisionKind::InterferenceAdjust);
    EXPECT_GT(dv.interferenceBucket(), 0);
    EXPECT_EQ(proxy.interferenceBucket(), dv.interferenceBucket());
}

TEST_F(BucketThreadingTest, AttachLatePushesCurrentBucketAndDetaches)
{
    DejaVuController dv(service, profiler, config(), Rng(23));
    dv.learn(learningSet());
    const Workload w{cassandraUpdateHeavy(), 20000.0};
    service.setWorkload(w);
    dv.onWorkloadChange(w);
    queue.runUntil(queue.now() + minutes(5));
    for (int i = 0; i < cluster.poolSize(); ++i)
        cluster.vm(i).setInterference(0.20);
    Service::PerfSample bad;
    bad.meanLatencyMs = service.meanLatencyMs();
    bad.qosPercent = 99.0;
    (void)dv.onSloFeedback(bad);
    ASSERT_TRUE(dv.onSloFeedback(bad).has_value());
    ASSERT_GT(dv.interferenceBucket(), 0);

    // Attaching after the escalation pushes the current bucket at
    // once (no transition needed)...
    DejaVuProxy proxy(Rng(15));
    dv.attachProxy(&proxy);
    EXPECT_EQ(proxy.interferenceBucket(), dv.interferenceBucket());

    // ...and a nullptr detach freezes the proxy's tag while the
    // controller moves on.
    const int tagged = proxy.interferenceBucket();
    dv.attachProxy(nullptr);
    dv.onWorkloadChange({cassandraUpdateHeavy(), 3000.0});
    EXPECT_EQ(proxy.interferenceBucket(), tagged);
}

} // namespace
} // namespace dejavu
