/**
 * @file
 * Unit tests for the queueing perf model and service models
 * (services/perf_model.hh, keyvalue/specweb services, slo.hh).
 */

#include <gtest/gtest.h>

#include "services/keyvalue_service.hh"
#include "services/perf_model.hh"
#include "services/slo.hh"
#include "services/specweb_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

TEST(PerfModel, UtilizationBasics)
{
    EXPECT_DOUBLE_EQ(PerfModel::utilization(50.0, 100.0), 0.5);
    EXPECT_GT(PerfModel::utilization(1.0, 0.0), 1.0);  // saturated
}

TEST(PerfModel, LatencyFlatThenKnee)
{
    const double base = 10.0;
    const double low = PerfModel::meanLatencyMs(base, 0.1);
    const double mid = PerfModel::meanLatencyMs(base, 0.5);
    const double high = PerfModel::meanLatencyMs(base, 0.9);
    EXPECT_LT(low, base * 1.1);     // near base at low load
    EXPECT_LT(mid, base * 2.0);     // still moderate
    EXPECT_GT(high, base * 5.0);    // explodes near the knee
}

TEST(PerfModel, LatencyMonotoneInUtilization)
{
    double prev = 0.0;
    for (double rho = 0.0; rho <= 1.5; rho += 0.05) {
        const double l = PerfModel::meanLatencyMs(12.0, rho);
        EXPECT_GE(l, prev);
        prev = l;
    }
}

TEST(PerfModel, SaturationIsCapped)
{
    const double l = PerfModel::meanLatencyMs(10.0, 10.0);
    EXPECT_LE(l, PerfModel::Params().saturationCapMs);
}

TEST(PerfModel, QosHealthyBelowKnee)
{
    EXPECT_DOUBLE_EQ(PerfModel::qosPercent(0.5), 99.5);
    EXPECT_DOUBLE_EQ(PerfModel::qosPercent(0.82), 99.5);
}

TEST(PerfModel, QosDegradesAboveKnee)
{
    const double q1 = PerfModel::qosPercent(0.9);
    const double q2 = PerfModel::qosPercent(1.1);
    EXPECT_LT(q1, 99.5);
    EXPECT_LT(q2, q1);
    EXPECT_GE(q2, 50.0);  // floored
}

TEST(Slo, LatencyBound)
{
    const Slo s = Slo::latency(60.0);
    EXPECT_TRUE(s.satisfied(59.9, 0.0));
    EXPECT_FALSE(s.satisfied(60.1, 100.0));
    EXPECT_NE(s.toString().find("60"), std::string::npos);
}

TEST(Slo, QosFloor)
{
    const Slo s = Slo::qos(95.0);
    EXPECT_TRUE(s.satisfied(1000.0, 95.0));
    EXPECT_FALSE(s.satisfied(1.0, 94.9));
}

class KeyValueServiceTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(5)};

    void warmUp(int instances)
    {
        cluster.setActiveInstances(instances);
        queue.runUntil(queue.now() + minutes(1));
    }
};

TEST_F(KeyValueServiceTest, WritesCostMoreThanReads)
{
    EXPECT_LT(service.capacityPerEcu(cassandraUpdateHeavy()),
              service.capacityPerEcu(cassandraReadHeavy()));
    EXPECT_GT(service.baseLatencyMs(cassandraUpdateHeavy()),
              service.baseLatencyMs(cassandraReadHeavy()));
}

TEST_F(KeyValueServiceTest, LatencyRisesWithLoad)
{
    warmUp(4);
    const RequestMix mix = cassandraUpdateHeavy();
    service.setWorkload({mix, 1000.0});
    const double low = service.meanLatencyMs();
    service.setWorkload({mix, 15000.0});
    const double high = service.meanLatencyMs();
    EXPECT_GT(high, low);
}

TEST_F(KeyValueServiceTest, MoreInstancesLowerLatency)
{
    const RequestMix mix = cassandraUpdateHeavy();
    service.setWorkload({mix, 12000.0});
    warmUp(3);
    const double few = service.meanLatencyMs();
    warmUp(10);
    queue.runUntil(queue.now() + minutes(15));  // past rebalance
    const double many = service.meanLatencyMs();
    EXPECT_GT(few, many);
}

TEST_F(KeyValueServiceTest, RebalancingTransientAfterResize)
{
    warmUp(4);
    queue.runUntil(queue.now() + minutes(20));
    EXPECT_FALSE(service.rebalancing());
    cluster.setActiveInstances(6);
    service.onReconfigure();
    EXPECT_TRUE(service.rebalancing());
    EXPECT_LT(service.transientFactor(), 1.0);
    queue.runUntil(queue.now() + minutes(11));
    EXPECT_FALSE(service.rebalancing());
    EXPECT_DOUBLE_EQ(service.transientFactor(), 1.0);
}

TEST_F(KeyValueServiceTest, RetypeAloneDoesNotRebalance)
{
    warmUp(4);
    service.onReconfigure();  // sync: count change noted here
    queue.runUntil(queue.now() + minutes(20));
    cluster.setInstanceType(InstanceType::XLarge);
    service.onReconfigure();
    EXPECT_FALSE(service.rebalancing());  // same ring membership
}

TEST_F(KeyValueServiceTest, HypotheticalMatchesDeployedSteadyState)
{
    const RequestMix mix = cassandraUpdateHeavy();
    const Workload w{mix, 8000.0};
    service.setWorkload(w);
    warmUp(5);
    queue.runUntil(queue.now() + minutes(15));  // settle transients
    const double deployed = service.meanLatencyMs();
    const double hypothetical =
        service.hypotheticalLatencyMs(w, {5, InstanceType::Large});
    EXPECT_NEAR(deployed, hypothetical, 1e-9);
}

TEST_F(KeyValueServiceTest, InterferenceRaisesHypotheticalLatency)
{
    const Workload w{cassandraUpdateHeavy(), 8000.0};
    const ResourceAllocation a{5, InstanceType::Large};
    EXPECT_GT(service.hypotheticalLatencyMs(w, a, 0.2),
              service.hypotheticalLatencyMs(w, a, 0.0));
}

TEST_F(KeyValueServiceTest, SampleNoiseIsBounded)
{
    warmUp(5);
    service.setWorkload({cassandraUpdateHeavy(), 8000.0});
    const double mean = service.meanLatencyMs();
    for (int i = 0; i < 200; ++i) {
        const auto s = service.sample();
        EXPECT_GT(s.meanLatencyMs, mean * 0.6);
        EXPECT_LT(s.meanLatencyMs, mean * 1.4);
    }
}

class SpecWebServiceTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    SpecWebService service{queue, cluster, Rng(7)};
};

TEST_F(SpecWebServiceTest, DynamicContentCostsMore)
{
    EXPECT_GT(service.capacityPerEcu(specwebSupport()),
              service.capacityPerEcu(specwebBanking()));
}

TEST_F(SpecWebServiceTest, QosDegradesWithLoad)
{
    cluster.setActiveInstances(10);
    queue.runUntil(minutes(1));
    const RequestMix mix = specwebSupport();
    service.setWorkload({mix, 2000.0});
    const double lowLoadQos = service.qosPercent();
    service.setWorkload({mix, 60000.0});
    const double highLoadQos = service.qosPercent();
    EXPECT_GT(lowLoadQos, highLoadQos);
    EXPECT_GE(lowLoadQos, 99.0);
}

TEST_F(SpecWebServiceTest, XLargeDoublesCapacity)
{
    const Workload w{specwebSupport(), 30000.0};
    const double utilL = service.hypotheticalUtilization(
        w, {10, InstanceType::Large});
    const double utilXL = service.hypotheticalUtilization(
        w, {10, InstanceType::XLarge});
    EXPECT_NEAR(utilL, 2.0 * utilXL, 1e-9);
}

TEST_F(SpecWebServiceTest, KindDiscriminators)
{
    EXPECT_EQ(service.kind(), ServiceKind::SpecWeb);
    KeyValueService kv(queue, cluster, Rng(1));
    EXPECT_EQ(kv.kind(), ServiceKind::KeyValue);
}

} // namespace
} // namespace dejavu
