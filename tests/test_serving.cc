/**
 * @file
 * The serving-layer test suite (src/serving): wire-codec round trips
 * and malformed-frame rejection, FrameReader reassembly/poisoning,
 * and — the heart of it — the daemon-vs-sim conformance contract:
 * the dejavud serving path and the simulator's DejaVuController must
 * answer *bit-identical* allocations for the same sample stream, at
 * 1, 4 and 8 client threads, across transports and across a daemon
 * restart (repository save()/load() round trip). Plus the p99-budget
 * fallback semantics, the admission gate and the proxy's
 * bucket-forwarding serving link.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "experiments/scenario.hh"
#include "proxy/proxy.hh"
#include "serving/bootstrap.hh"
#include "serving/client.hh"
#include "serving/server.hh"
#include "serving/transport.hh"
#include "serving/wire.hh"
#include "sim/cluster.hh"

namespace dejavu {
namespace {

using namespace dejavu::serving;

// ================== wire codec ==================

TEST(ServingWire, HelloRoundTrip)
{
    HelloMsg msg;
    msg.kind = ServiceKind::Rubis;
    msg.fallback = {12, InstanceType::XLarge};
    msg.owner = "web-tier-7";
    const std::optional<HelloMsg> back = decodeHello(encodeHello(msg));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->kind, msg.kind);
    EXPECT_EQ(back->fallback, msg.fallback);
    EXPECT_EQ(back->owner, msg.owner);
}

TEST(ServingWire, SampleRoundTripIsBitExact)
{
    // The conformance digests hash raw certainty/metric bits, so the
    // codec must preserve every representable double exactly —
    // signed zero, denormals, NaN payloads included.
    SampleMsg msg;
    msg.sessionId = 0xdeadbeef;
    msg.seq = 41;
    msg.values = {0.0,
                  -0.0,
                  5e-324,  // Smallest denormal.
                  1.0 / 3.0,
                  std::numeric_limits<double>::quiet_NaN(),
                  std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::max()};
    const std::optional<SampleMsg> back =
        decodeSample(encodeSample(msg));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->sessionId, msg.sessionId);
    EXPECT_EQ(back->seq, msg.seq);
    ASSERT_EQ(back->values.size(), msg.values.size());
    for (std::size_t i = 0; i < msg.values.size(); ++i) {
        std::uint64_t a, b;
        std::memcpy(&a, &msg.values[i], sizeof a);
        std::memcpy(&b, &back->values[i], sizeof b);
        EXPECT_EQ(a, b) << "value " << i << " lost bits";
    }
}

TEST(ServingWire, AnswerBucketByeAckRoundTrip)
{
    AnswerMsg answer;
    answer.sessionId = 7;
    answer.seq = 99;
    answer.kind = 2;
    answer.flags = AnswerMsg::kBudgetBreached;
    answer.classId = -1;
    answer.certaintyBits = 0x3fe5555555555555ull;
    answer.bucketUsed = 3;
    answer.allocation = {6, InstanceType::Large};
    const std::optional<AnswerMsg> a =
        decodeAnswer(encodeAnswer(answer));
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->sessionId, answer.sessionId);
    EXPECT_EQ(a->seq, answer.seq);
    EXPECT_EQ(a->kind, answer.kind);
    EXPECT_EQ(a->flags, answer.flags);
    EXPECT_EQ(a->classId, answer.classId);
    EXPECT_EQ(a->certaintyBits, answer.certaintyBits);
    EXPECT_EQ(a->bucketUsed, answer.bucketUsed);
    EXPECT_EQ(a->allocation, answer.allocation);

    BucketMsg bucket{5, 2};
    const std::optional<BucketMsg> b =
        decodeBucket(encodeBucket(bucket));
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->sessionId, 5u);
    EXPECT_EQ(b->bucket, 2);

    ByeMsg bye{17};
    const std::optional<ByeMsg> y = decodeBye(encodeBye(bye));
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(y->sessionId, 17u);

    HelloAckMsg ack{HelloAckMsg::kRejected};
    const std::optional<HelloAckMsg> k =
        decodeHelloAck(encodeHelloAck(ack));
    ASSERT_TRUE(k.has_value());
    EXPECT_FALSE(k->accepted());
}

TEST(ServingWire, ScratchVariantsMatchAllocatingForms)
{
    SampleMsg msg;
    msg.sessionId = 3;
    msg.seq = 8;
    for (int i = 0; i < 54; ++i)
        msg.values.push_back(0.5 * i - 3.0);

    // Dirty scratch buffers: the Into variants must fully overwrite.
    WireFrame scratch(100, 0xaa);
    encodeSampleInto(scratch, msg.sessionId, msg.seq, msg.values);
    EXPECT_EQ(scratch, encodeSample(msg));

    SampleMsg decoded;
    decoded.values.assign(200, -1.0);
    ASSERT_TRUE(decodeSampleInto(scratch, decoded));
    EXPECT_EQ(decoded.sessionId, msg.sessionId);
    EXPECT_EQ(decoded.seq, msg.seq);
    EXPECT_EQ(decoded.values, msg.values);

    AnswerMsg answer;
    answer.sessionId = 9;
    answer.seq = 1;
    answer.allocation = {4, InstanceType::Large};
    WireFrame answerScratch(64, 0xbb);
    encodeAnswerInto(answerScratch, answer);
    EXPECT_EQ(answerScratch, encodeAnswer(answer));
}

TEST(ServingWire, DecodersRejectMalformedFrames)
{
    EXPECT_FALSE(frameType({}).has_value());
    EXPECT_FALSE(frameType({0}).has_value());
    EXPECT_FALSE(frameType({7}).has_value());  // Unknown type tag.

    // Out-of-range enum fields.
    HelloMsg hello;
    hello.kind = ServiceKind::KeyValue;
    WireFrame frame = encodeHello(hello);
    frame[1] = 200;  // kind byte
    EXPECT_FALSE(decodeHello(frame).has_value());

    AnswerMsg answer;
    frame = encodeAnswer(answer);
    frame[9] = 3;  // kind byte beyond lost-entry
    EXPECT_FALSE(decodeAnswer(frame).has_value());

    BucketMsg bucket{1, -2};
    EXPECT_FALSE(decodeBucket(encodeBucket(bucket)).has_value());

    // Every proper prefix of every message type must be rejected,
    // and so must one-byte overruns — decoders are total.
    SampleMsg sample;
    sample.sessionId = 1;
    sample.seq = 2;
    sample.values = {1.0, 2.0, 3.0};
    const std::vector<WireFrame> wholes = {
        encodeHello(hello), encodeHelloAck({1}),
        encodeSample(sample), encodeAnswer(answer),
        encodeBucket({1, 0}), encodeBye({1})};
    for (const WireFrame &whole : wholes) {
        for (std::size_t cut = 1; cut < whole.size(); ++cut) {
            const WireFrame part(whole.begin(),
                                 whole.begin()
                                     + static_cast<std::ptrdiff_t>(cut));
            EXPECT_FALSE(decodeHello(part).has_value());
            EXPECT_FALSE(decodeHelloAck(part).has_value());
            EXPECT_FALSE(decodeSample(part).has_value());
            EXPECT_FALSE(decodeAnswer(part).has_value());
            EXPECT_FALSE(decodeBucket(part).has_value());
            EXPECT_FALSE(decodeBye(part).has_value());
        }
        WireFrame fat = whole;
        fat.push_back(0);
        EXPECT_FALSE(decodeHello(fat).has_value());
        EXPECT_FALSE(decodeHelloAck(fat).has_value());
        EXPECT_FALSE(decodeSample(fat).has_value());
        EXPECT_FALSE(decodeAnswer(fat).has_value());
        EXPECT_FALSE(decodeBucket(fat).has_value());
        EXPECT_FALSE(decodeBye(fat).has_value());
    }
}

TEST(ServingWire, FrameReaderReassemblesSplitFrames)
{
    const WireFrame one = encodeBye({1});
    const WireFrame two = encodeHelloAck({42});
    std::vector<std::uint8_t> stream;
    appendFramed(stream, one);
    appendFramed(stream, two);

    // Feed the byte stream in awkward 3-byte slices.
    FrameReader reader;
    std::vector<WireFrame> frames;
    for (std::size_t off = 0; off < stream.size(); off += 3) {
        reader.feed(stream.data() + off,
                    std::min<std::size_t>(3, stream.size() - off));
        while (std::optional<WireFrame> frame = reader.next())
            frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], one);
    EXPECT_EQ(frames[1], two);
    EXPECT_FALSE(reader.error());
}

TEST(ServingWire, FrameReaderPoisonsOnOversizedLength)
{
    std::vector<std::uint8_t> stream;
    const std::uint32_t evil = kMaxFrameBytes + 1;
    for (int i = 0; i < 4; ++i)
        stream.push_back(static_cast<std::uint8_t>(evil >> (8 * i)));
    FrameReader reader;
    reader.feed(stream.data(), stream.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error());

    // A poisoned reader never recovers, even on valid input.
    std::vector<std::uint8_t> good;
    appendFramed(good, encodeBye({1}));
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.error());
}

// ================== daemon-vs-sim conformance ==================

/** The bit-compared essence of one allocation answer. Daemon kinds
 *  unknown(1) and lost(2) both fold to 1, exactly as
 *  DejaVuController folds LostEntry into DecisionKind::
 *  UnknownWorkload. */
struct AnswerDigest
{
    int kind = 0;  ///< 0 = cache hit, 1 = full-capacity fallback.
    int classId = -1;
    std::uint64_t certaintyBits = 0;
    ResourceAllocation allocation;

    bool operator==(const AnswerDigest &o) const
    {
        return kind == o.kind && classId == o.classId
            && certaintyBits == o.certaintyBits
            && allocation == o.allocation;
    }
};

AnswerDigest
digestOf(const AnswerMsg &answer)
{
    AnswerDigest d;
    d.kind = answer.kind == 0 ? 0 : 1;
    d.classId = answer.classId;
    d.certaintyBits = answer.certaintyBits;
    d.allocation = answer.allocation;
    return d;
}

AnswerDigest
digestOf(const DejaVuController::Decision &decision)
{
    AnswerDigest d;
    d.kind = decision.kind
                == DejaVuController::DecisionKind::CacheHit
        ? 0 : 1;
    d.classId = decision.classId;
    std::memcpy(&d.certaintyBits, &decision.certainty,
                sizeof d.certaintyBits);
    d.allocation = decision.allocation;
    return d;
}

/** The learned stack every serving test shares. Built once: the
 *  bootstrap is the same construction path dejavud runs, and the
 *  sample streams are collected exactly once because collection
 *  consumes the member RNGs (bootstrap.hh). */
struct ServingWorld
{
    std::unique_ptr<ServingBootstrap> bootstrap;
    std::vector<ServiceKind> kinds;
    std::vector<std::vector<MetricSample>> samples;   ///< Per kind.
    std::vector<ResourceAllocation> fallbacks;        ///< Per kind.
    std::vector<std::vector<AnswerDigest>> simDigests;///< Per kind.
};

ServingWorld &
world()
{
    static ServingWorld *w = [] {
        auto *built = new ServingWorld;
        BootstrapOptions options;
        options.learnThreads = 2;
        built->bootstrap = makeServingBootstrap(options);
        for (auto &member : built->bootstrap->stack->members) {
            const ServiceKind kind = member->service->kind();
            built->kinds.push_back(kind);
            built->samples.push_back(
                built->bootstrap->collectSamples(kind, 48));
            built->fallbacks.push_back(
                member->cluster->maxAllocation());
        }
        // The sim half of the contract: the member controllers
        // answer the streams through decideFromSample — the same
        // kernel, driven the simulator's way.
        for (std::size_t k = 0; k < built->kinds.size(); ++k) {
            std::vector<AnswerDigest> digests;
            FleetMember &member =
                built->bootstrap->memberFor(built->kinds[k]);
            for (const MetricSample &sample : built->samples[k])
                digests.push_back(digestOf(
                    member.controller->decideFromSample(sample)));
            built->simDigests.push_back(std::move(digests));
        }
        return built;
    }();
    return *w;
}

/** Drive @p server with the world's streams over @p threads direct
 *  clients and return per-kind digests in sample order. Each thread
 *  owns one session per kind and answers the sample indices
 *  congruent to its id — a valid split because answers are
 *  per-sample (bucket stays 0 throughout; see session.hh). */
std::vector<std::vector<AnswerDigest>>
daemonDigests(ServingServer &server, int threads)
{
    ServingWorld &w = world();
    std::vector<std::vector<AnswerDigest>> result(w.kinds.size());
    for (std::size_t k = 0; k < w.kinds.size(); ++k)
        result[k].resize(w.samples[k].size());

    std::vector<int> failures(static_cast<std::size_t>(threads), 0);
    auto worker = [&](int th) {
        for (std::size_t k = 0; k < w.kinds.size(); ++k) {
            ServingClient client(server);
            if (!client.hello(w.kinds[k], w.fallbacks[k], "conform")) {
                ++failures[static_cast<std::size_t>(th)];
                return;
            }
            for (std::size_t i = static_cast<std::size_t>(th);
                 i < w.samples[k].size();
                 i += static_cast<std::size_t>(threads))
                result[k][i] =
                    digestOf(client.decide(w.samples[k][i].values));
            client.bye();
        }
    };
    std::vector<std::thread> pool;
    for (int th = 0; th < threads; ++th)
        pool.emplace_back(worker, th);
    for (auto &t : pool)
        t.join();
    for (int f : failures)
        EXPECT_EQ(f, 0) << "conformance session rejected";
    return result;
}

TEST(ServingConformance, DaemonMatchesSimAcrossClientThreadCounts)
{
    ServingWorld &w = world();
    for (int threads : {1, 4, 8}) {
        const auto daemon = daemonDigests(*w.bootstrap->server,
                                          threads);
        ASSERT_EQ(daemon.size(), w.simDigests.size());
        for (std::size_t k = 0; k < daemon.size(); ++k)
            EXPECT_EQ(daemon[k], w.simDigests[k])
                << "kind " << serviceKindName(w.kinds[k]) << " at "
                << threads << " client threads";
    }
    // The streams carried real decisions, not a vacuous all-fallback
    // run: the self-test expectation is (nearly) all cache hits.
    std::uint64_t hits = 0;
    for (const auto &digests : w.simDigests)
        for (const AnswerDigest &d : digests)
            hits += d.kind == 0 ? 1 : 0;
    EXPECT_GT(hits, 0u);
}

TEST(ServingConformance, BusTransportMatchesDirect)
{
    // The bus hands the same bytes to the same serve() on another
    // thread; answers must not change.
    ServingWorld &w = world();
    ServingBus bus(*w.bootstrap->server);
    ServingBus::Connection &conn = bus.connect();
    for (std::size_t k = 0; k < w.kinds.size(); ++k) {
        ServingClient client(conn);
        ASSERT_TRUE(
            client.hello(w.kinds[k], w.fallbacks[k], "bus-conform"));
        for (std::size_t i = 0; i < w.samples[k].size(); ++i)
            EXPECT_TRUE(digestOf(client.decide(w.samples[k][i].values))
                        == w.simDigests[k][i])
                << "kind " << serviceKindName(w.kinds[k])
                << " sample " << i << " diverged over the bus";
        client.bye();
    }
    bus.stop();
}

TEST(ServingConformance, RestartReloadServesIdenticalAnswers)
{
    // The daemon restart story: persist the repository, reload it
    // (here at a different shard count), re-register the models —
    // and every answer must be what it was before the restart.
    ServingWorld &w = world();
    std::ostringstream persisted;
    w.bootstrap->repo->save(persisted);

    std::istringstream in(persisted.str());
    SharedRepository reloaded = SharedRepository::load(
        in, SharedRepository::Mode::Shared, ServiceKind::Generic,
        /*shards=*/8);

    // save() bytes are shard-count independent — reload and compare.
    std::ostringstream again;
    reloaded.save(again);
    EXPECT_EQ(again.str(), persisted.str());

    ServingServer::Config config;
    config.budgetNanos = ServingServer::kNoBudget;
    ServingServer restarted(reloaded, config);
    for (auto &member : w.bootstrap->stack->members)
        restarted.registerModel(member->service->kind(),
                                member->controller->servingModel());
    const auto digests = daemonDigests(restarted, 4);
    for (std::size_t k = 0; k < digests.size(); ++k)
        EXPECT_EQ(digests[k], w.simDigests[k])
            << "kind " << serviceKindName(w.kinds[k])
            << " diverged across restart";
}

// ================== serving semantics ==================

TEST(ServingServer, BudgetZeroAlwaysFallsBackAndCounts)
{
    ServingWorld &w = world();
    ServingServer::Config config;
    config.budgetNanos = 0;  // Drill mode: every answer breaches.
    ServingServer server(*w.bootstrap->repo, config);
    for (auto &member : w.bootstrap->stack->members)
        server.registerModel(member->service->kind(),
                             member->controller->servingModel());

    ServingClient client(server);
    ASSERT_TRUE(client.hello(w.kinds[0], w.fallbacks[0], "drill"));
    const int n = 16;
    for (int i = 0; i < n; ++i) {
        const AnswerMsg answer =
            client.decide(w.samples[0][static_cast<std::size_t>(i)]
                              .values);
        EXPECT_TRUE(answer.flags & AnswerMsg::kBudgetBreached);
        EXPECT_EQ(answer.allocation, w.fallbacks[0])
            << "a breached answer must serve the session fallback";
    }
    EXPECT_EQ(server.metrics().budgetBreaches.load(),
              static_cast<std::uint64_t>(n));
    // The breach replaces the *allocation*, never the accounting:
    // the answers still classified and were still served.
    EXPECT_EQ(server.metrics().samples.load(),
              static_cast<std::uint64_t>(n));
}

TEST(ServingServer, NoBudgetNeverBreaches)
{
    ServingWorld &w = world();
    const std::uint64_t before =
        w.bootstrap->server->metrics().budgetBreaches.load();
    ServingClient client(*w.bootstrap->server);
    ASSERT_TRUE(client.hello(w.kinds[0], w.fallbacks[0], "nobudget"));
    for (int i = 0; i < 8; ++i) {
        const AnswerMsg answer =
            client.decide(w.samples[0][static_cast<std::size_t>(i)]
                              .values);
        EXPECT_FALSE(answer.flags & AnswerMsg::kBudgetBreached);
    }
    client.bye();
    EXPECT_EQ(w.bootstrap->server->metrics().budgetBreaches.load(),
              before);
}

TEST(ServingServer, AdmissionGateRejectsThenReadmitsAfterBye)
{
    ServingWorld &w = world();
    ServingServer::Config config;
    config.budgetNanos = ServingServer::kNoBudget;
    config.maxSessions = 1;
    ServingServer server(*w.bootstrap->repo, config);
    for (auto &member : w.bootstrap->stack->members)
        server.registerModel(member->service->kind(),
                             member->controller->servingModel());

    ServingClient first(server);
    ServingClient second(server);
    EXPECT_TRUE(first.hello(w.kinds[0], w.fallbacks[0], "one"));
    EXPECT_FALSE(second.hello(w.kinds[1], w.fallbacks[1], "two"));
    EXPECT_EQ(server.metrics().admissionRejects.load(), 1u);

    // Bye frees the slot; the rejected client can come back.
    first.bye();
    EXPECT_TRUE(second.hello(w.kinds[1], w.fallbacks[1], "two"));
    second.bye();
    EXPECT_EQ(server.metrics().sessionsOpened.load(), 2u);
    EXPECT_EQ(server.metrics().sessionsClosed.load(), 2u);
}

TEST(ServingServer, MalformedFramesAreCountedNeverFatal)
{
    ServingWorld &w = world();
    ServingServer::Config config;
    config.budgetNanos = ServingServer::kNoBudget;
    ServingServer server(*w.bootstrap->repo, config);
    for (auto &member : w.bootstrap->stack->members)
        server.registerModel(member->service->kind(),
                             member->controller->servingModel());

    const WireFrame garbage[] = {
        {},                      // Empty payload.
        {9, 1, 2, 3},            // Unknown type tag.
        {static_cast<std::uint8_t>(MsgType::Sample), 1},  // Truncated.
        encodeHelloAck({3}),     // Client-bound type sent serverward.
        encodeAnswer({}),        // Likewise.
        encodeSample({12345, 0, {1.0}}),  // Session never opened.
        encodeBye({54321}),      // Likewise.
    };
    std::uint64_t expected = 0;
    for (const WireFrame &frame : garbage) {
        EXPECT_FALSE(server.serve(frame, 0).has_value());
        ++expected;
        EXPECT_EQ(server.metrics().wireErrors.load(), expected);
    }

    // The daemon still serves honest clients afterwards.
    ServingClient client(server);
    ASSERT_TRUE(client.hello(w.kinds[0], w.fallbacks[0], "honest"));
    const AnswerMsg answer = client.decide(w.samples[0][0].values);
    EXPECT_TRUE(digestOf(answer) == w.simDigests[0][0]);
    client.bye();
}

TEST(ServingServer, BucketedEntryServesBucketLookups)
{
    // The §3.6 path over the wire: publish a bucket, store a
    // (class, bucket) entry, and the very next lookup must walk it —
    // which also exercises the RCU snapshot refresh, since the store
    // moves the repository version under a live session.
    ServingWorld &w = world();
    ServingClient client(*w.bootstrap->server);
    ASSERT_TRUE(client.hello(w.kinds[0], w.fallbacks[0], "bucketed"));

    // Find a sample this model answers with a cache hit.
    int hitIndex = -1;
    AnswerMsg base;
    for (std::size_t i = 0; i < w.samples[0].size(); ++i) {
        base = client.decide(w.samples[0][i].values);
        if (base.kind == 0) {
            hitIndex = static_cast<int>(i);
            break;
        }
    }
    ASSERT_GE(hitIndex, 0) << "no cache-hit sample in the stream";
    EXPECT_EQ(base.bucketUsed, 0);

    const ResourceAllocation bumped{9, InstanceType::XLarge};
    RepositoryHandle handle =
        w.bootstrap->repo->attach(w.kinds[0], "interference-tuner");
    handle.store({base.classId, 2}, bumped);
    w.bootstrap->repo->detach(handle);

    client.publishBucket(2);
    const AnswerMsg adjusted = client.decide(
        w.samples[0][static_cast<std::size_t>(hitIndex)].values);
    EXPECT_EQ(adjusted.kind, 0);
    EXPECT_EQ(adjusted.bucketUsed, 2);
    EXPECT_EQ(adjusted.allocation, bumped);

    // Episode over: back to bucket 0, the baseline entry serves.
    client.publishBucket(0);
    const AnswerMsg baseline = client.decide(
        w.samples[0][static_cast<std::size_t>(hitIndex)].values);
    EXPECT_EQ(baseline.bucketUsed, 0);
    EXPECT_EQ(baseline.allocation, base.allocation);
    client.bye();
}

TEST(ServingProxy, BucketTransitionsForwardToAttachedSession)
{
    ServingWorld &w = world();
    ServingClient client(*w.bootstrap->server);
    ASSERT_TRUE(client.hello(w.kinds[0], w.fallbacks[0], "proxy"));
    const std::uint64_t before =
        w.bootstrap->server->metrics().bucketUpdates.load();

    DejaVuProxy proxy(Rng(21));
    proxy.setInterferenceBucket(3);  // No link yet: not forwarded.
    EXPECT_EQ(proxy.stats().servingBucketPublishes, 0u);

    // Attach pushes the in-flight bucket so the daemon session is
    // never behind an ongoing episode.
    proxy.attachServingLink(&client);
    EXPECT_EQ(proxy.stats().servingBucketPublishes, 1u);
    proxy.setInterferenceBucket(1);
    EXPECT_EQ(proxy.stats().servingBucketPublishes, 2u);
    EXPECT_EQ(w.bootstrap->server->metrics().bucketUpdates.load(),
              before + 2);

    // Detached: transitions stay local again.
    proxy.attachServingLink(nullptr);
    proxy.setInterferenceBucket(0);
    EXPECT_EQ(proxy.stats().servingBucketPublishes, 2u);
    EXPECT_EQ(w.bootstrap->server->metrics().bucketUpdates.load(),
              before + 2);
    client.bye();
}

} // namespace
} // namespace dejavu
