/**
 * @file
 * Unit tests for the shared cross-service repository
 * (core/shared_repository.hh): attachment lifecycle, per-kind
 * namespace isolation, per-attachment/aggregate statistics, the
 * write-through isolation A/B mode, and persistence with the kind
 * column (including the legacy 4-column format).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/parallel.hh"
#include "core/shared_repository.hh"

namespace dejavu {
namespace {

const ResourceAllocation kFourLarge{4, InstanceType::Large};
const ResourceAllocation kSixLarge{6, InstanceType::Large};
const ResourceAllocation kTenXL{10, InstanceType::XLarge};

TEST(SharedRepository, StoreAndLookupThroughHandle)
{
    SharedRepository repo;
    RepositoryHandle h = repo.attach(ServiceKind::KeyValue, "svc-A");
    ASSERT_TRUE(h.attached());
    EXPECT_EQ(h.kind(), ServiceKind::KeyValue);
    EXPECT_EQ(h.owner(), "svc-A");

    h.store({0, 0}, kFourLarge);
    const auto hit = h.lookup({0, 0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, kFourLarge);
    EXPECT_FALSE(h.lookup({1, 0}).has_value());

    EXPECT_EQ(h.stats().stores, 1u);
    EXPECT_EQ(h.stats().lookups, 2u);
    EXPECT_EQ(h.stats().hits, 1u);
    EXPECT_EQ(h.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(h.hitRate(), 0.5);
    // A single attachment can only hit its own writes.
    EXPECT_EQ(h.crossHits(), 0u);
}

TEST(SharedRepository, KindNamespaceIsolation)
{
    // The per-kind compatibility rule: a RUBiS-tuned allocation must
    // never serve a KeyValue lookup, even for identical keys.
    SharedRepository repo;
    RepositoryHandle rubis = repo.attach(ServiceKind::Rubis, "rubis");
    RepositoryHandle kv = repo.attach(ServiceKind::KeyValue, "kv");

    rubis.store({0, 0}, kTenXL);
    EXPECT_FALSE(kv.lookup({0, 0}).has_value());
    EXPECT_FALSE(kv.contains({0, 0}));
    EXPECT_EQ(kv.entries(), 0u);
    ASSERT_TRUE(rubis.lookup({0, 0}).has_value());

    kv.store({0, 0}, kFourLarge);
    // Same key, both namespaces populated: each kind sees its own.
    EXPECT_EQ(*kv.lookup({0, 0}), kFourLarge);
    EXPECT_EQ(*rubis.lookup({0, 0}), kTenXL);
    EXPECT_EQ(repo.entries(ServiceKind::Rubis), 1u);
    EXPECT_EQ(repo.entries(ServiceKind::KeyValue), 1u);
    EXPECT_EQ(repo.entries(), 2u);
}

TEST(SharedRepository, CrossServiceHitsCountTunerRunsAvoided)
{
    SharedRepository repo;
    RepositoryHandle a = repo.attach(ServiceKind::KeyValue, "svc-A");
    RepositoryHandle b = repo.attach(ServiceKind::KeyValue, "svc-B");

    a.store({2, 1}, kSixLarge);
    // B's hit was served by A's write: one tuner run avoided.
    ASSERT_TRUE(b.lookup({2, 1}).has_value());
    EXPECT_EQ(b.stats().hits, 1u);
    EXPECT_EQ(b.crossHits(), 1u);
    EXPECT_EQ(b.reusedEntries(), 1u);
    // A's own hit is neither a cross hit nor a reuse.
    ASSERT_TRUE(a.lookup({2, 1}).has_value());
    EXPECT_EQ(a.crossHits(), 0u);
    EXPECT_EQ(a.reusedEntries(), 0u);
    // Re-reading the same peer entry is another cross hit but NOT
    // another avoided tuner run: reused counts distinct keys.
    ASSERT_TRUE(b.lookup({2, 1}).has_value());
    EXPECT_EQ(b.crossHits(), 2u);
    EXPECT_EQ(b.reusedEntries(), 1u);
    EXPECT_EQ(repo.aggregateCrossHits(), 2u);
    EXPECT_EQ(repo.aggregateReusedEntries(), 1u);
}

TEST(SharedRepository, ConcurrentAttachmentsKeepIndependentStats)
{
    // Several attachments live at once: every attachment accounts
    // its own traffic, the aggregate is the exact sum, and attach
    // order assigns dense ids.
    SharedRepository repo;
    RepositoryHandle h0 = repo.attach(ServiceKind::KeyValue, "s0");
    RepositoryHandle h1 = repo.attach(ServiceKind::KeyValue, "s1");
    RepositoryHandle h2 = repo.attach(ServiceKind::SpecWeb, "s2");
    EXPECT_EQ(h0.id(), 0);
    EXPECT_EQ(h1.id(), 1);
    EXPECT_EQ(h2.id(), 2);
    EXPECT_EQ(repo.attachments(), 3);

    h0.store({0, 0}, kFourLarge);
    (void)h0.lookup({0, 0});  // hit (own)
    (void)h1.lookup({0, 0});  // hit (cross)
    (void)h1.lookup({9, 0});  // miss
    (void)h2.lookup({0, 0});  // miss (other kind)
    h2.store({0, 0}, kTenXL);

    EXPECT_EQ(h0.stats().lookups, 1u);
    EXPECT_EQ(h0.stats().hits, 1u);
    EXPECT_EQ(h1.stats().lookups, 2u);
    EXPECT_EQ(h1.stats().hits, 1u);
    EXPECT_EQ(h1.stats().misses, 1u);
    EXPECT_EQ(h1.crossHits(), 1u);
    EXPECT_EQ(h2.stats().misses, 1u);

    const Repository::Stats total = repo.aggregateStats();
    EXPECT_EQ(total.lookups, 4u);
    EXPECT_EQ(total.hits, 2u);
    EXPECT_EQ(total.misses, 2u);
    EXPECT_EQ(total.stores, 2u);
    EXPECT_DOUBLE_EQ(repo.hitRate(), 0.5);
}

TEST(SharedRepository, WriteThroughIsolationMatchesPrivateBehavior)
{
    // The A/B mode: lookups behave exactly like private
    // repositories (peer writes are invisible) while the shadow
    // kind table counts what sharing would have served.
    SharedRepository repo(SharedRepository::Mode::WriteThroughIsolated);
    RepositoryHandle a = repo.attach(ServiceKind::KeyValue, "svc-A");
    RepositoryHandle b = repo.attach(ServiceKind::KeyValue, "svc-B");

    a.store({0, 0}, kFourLarge);
    EXPECT_FALSE(b.lookup({0, 0}).has_value());  // private behavior
    EXPECT_EQ(b.wouldHaveHit(), 1u);             // ...sharing counted
    EXPECT_FALSE(b.lookup({5, 0}).has_value());
    EXPECT_EQ(b.wouldHaveHit(), 1u);  // nobody has (5,0): no claim

    b.store({0, 0}, kSixLarge);
    EXPECT_EQ(*b.lookup({0, 0}), kSixLarge);
    EXPECT_EQ(*a.lookup({0, 0}), kFourLarge);  // A's view unchanged
    EXPECT_EQ(b.crossHits(), 0u);
    EXPECT_EQ(repo.aggregateWouldHaveHits(), 1u);
    EXPECT_EQ(a.entries(), 1u);
    EXPECT_EQ(b.entries(), 1u);
}

TEST(SharedRepository, ClearDropsOnlyOwnWrites)
{
    SharedRepository repo;
    RepositoryHandle a = repo.attach(ServiceKind::KeyValue, "svc-A");
    RepositoryHandle b = repo.attach(ServiceKind::KeyValue, "svc-B");

    a.store({0, 0}, kFourLarge);
    b.store({1, 0}, kSixLarge);
    EXPECT_EQ(a.entries(), 2u);  // shared view

    a.clear();
    // A's write is gone; B's survives for both.
    EXPECT_FALSE(a.contains({0, 0}));
    EXPECT_TRUE(a.contains({1, 0}));
    EXPECT_TRUE(b.contains({1, 0}));
    EXPECT_EQ(repo.entries(ServiceKind::KeyValue), 1u);
}

TEST(SharedRepository, SaveLoadRoundTripWithKindColumn)
{
    SharedRepository repo;
    RepositoryHandle kv = repo.attach(ServiceKind::KeyValue, "kv");
    RepositoryHandle web = repo.attach(ServiceKind::SpecWeb, "web");
    kv.store({0, 0}, kFourLarge);
    kv.store({1, 2}, kSixLarge);
    web.store({0, 0}, kTenXL);

    std::ostringstream out;
    repo.save(out);
    EXPECT_NE(out.str().find("kind,class,bucket,instances,type"),
              std::string::npos);
    EXPECT_NE(out.str().find("keyvalue,1,2,6,m1.large"),
              std::string::npos);
    EXPECT_NE(out.str().find("specweb,0,0,10,m1.xlarge"),
              std::string::npos);

    std::istringstream in(out.str());
    SharedRepository loaded = SharedRepository::load(in);
    EXPECT_EQ(loaded.entries(), 3u);
    EXPECT_EQ(*loaded.peek(ServiceKind::KeyValue, {1, 2}), kSixLarge);
    EXPECT_EQ(*loaded.peek(ServiceKind::SpecWeb, {0, 0}), kTenXL);
    EXPECT_FALSE(
        loaded.peek(ServiceKind::Rubis, {0, 0}).has_value());

    // Loaded entries have no writer: a fresh attachment's hits on
    // them count as cross-service reuse.
    RepositoryHandle h = loaded.attach(ServiceKind::KeyValue, "new");
    ASSERT_TRUE(h.lookup({0, 0}).has_value());
    EXPECT_EQ(h.crossHits(), 1u);
}

TEST(SharedRepository, LegacyFourColumnLoadStillWorks)
{
    // Per-controller CSVs from before the kind column: rows are
    // filed under the caller's legacy kind.
    const std::string legacy =
        "class,bucket,instances,type\n"
        "0,0,4,m1.large\n"
        "1,2,10,m1.xlarge\n";
    std::istringstream in(legacy);
    SharedRepository loaded = SharedRepository::load(
        in, SharedRepository::Mode::Shared, ServiceKind::Rubis);
    EXPECT_EQ(loaded.entries(), 2u);
    EXPECT_EQ(*loaded.peek(ServiceKind::Rubis, {0, 0}), kFourLarge);
    EXPECT_EQ(*loaded.peek(ServiceKind::Rubis, {1, 2}), kTenXL);
    EXPECT_EQ(loaded.entries(ServiceKind::KeyValue), 0u);
}

TEST(SharedRepositoryDeathTest, LoadRejectsDuplicateRows)
{
    const std::string dup =
        "kind,class,bucket,instances,type\n"
        "keyvalue,0,0,4,m1.large\n"
        "keyvalue,0,0,6,m1.large\n";
    std::istringstream in(dup);
    EXPECT_EXIT((void)SharedRepository::load(in),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(SharedRepositoryDeathTest, LoadRejectsMalformedRows)
{
    std::istringstream in("keyvalue,0,0\n");
    EXPECT_EXIT((void)SharedRepository::load(in),
                ::testing::ExitedWithCode(1), "expected");
    std::istringstream bad("noSuchKind,0,0,4,m1.large\n");
    EXPECT_EXIT((void)SharedRepository::load(bad),
                ::testing::ExitedWithCode(1), "kind");
}

TEST(SharedRepository, DetachKeepsEntriesAndAggregateStats)
{
    SharedRepository repo;
    RepositoryHandle a = repo.attach(ServiceKind::KeyValue, "a");
    RepositoryHandle b = repo.attach(ServiceKind::KeyValue, "b");
    a.store({0, 0}, kFourLarge);
    (void)a.lookup({0, 0});

    repo.detach(a);
    EXPECT_FALSE(a.attached());
    EXPECT_EQ(repo.attachments(), 1);
    EXPECT_EQ(repo.totalAttachments(), 2);
    // The detached attachment's entries and statistics remain.
    EXPECT_TRUE(b.contains({0, 0}));
    EXPECT_EQ(repo.aggregateStats().lookups, 1u);
}

TEST(SharedRepositoryDeathTest, UnattachedHandleOpsAreFatal)
{
    RepositoryHandle none;
    EXPECT_EXIT((void)none.lookup({0, 0}),
                ::testing::ExitedWithCode(1), "unattached");
    EXPECT_EXIT(none.store({0, 0}, kFourLarge),
                ::testing::ExitedWithCode(1), "unattached");
}

TEST(SharedRepository, KeysSortedAndToString)
{
    SharedRepository repo;
    RepositoryHandle h = repo.attach(ServiceKind::KeyValue, "kv");
    h.store({2, 0}, kFourLarge);
    h.store({0, 1}, kFourLarge);
    h.store({0, 0}, kFourLarge);
    const auto keys = h.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], (RepositoryKey{0, 0}));
    EXPECT_EQ(keys[1], (RepositoryKey{0, 1}));
    EXPECT_EQ(keys[2], (RepositoryKey{2, 0}));

    const std::string s = repo.toString();
    EXPECT_NE(s.find("shared-repository[shared]"), std::string::npos);
    EXPECT_NE(s.find("keyvalue"), std::string::npos);
    EXPECT_NE(h.toString().find("repository[keyvalue]"),
              std::string::npos);
}

TEST(SharedRepository, SaveBytesIndependentOfInsertionOrder)
{
    // The kind tables are unordered_maps; save() must never leak
    // hash-iteration order into its CSV (the determinism linter's
    // unordered-iteration rule guards the code path, this pins the
    // bytes). Same entries, opposite insertion orders, identical
    // output.
    const std::vector<RepositoryKey> keys{
        {7, 1}, {0, 0}, {3, 2}, {12, 0}, {1, 1}};

    SharedRepository forward;
    RepositoryHandle hf =
        forward.attach(ServiceKind::KeyValue, "svc");
    for (const RepositoryKey &key : keys)
        hf.store(key, kFourLarge);

    SharedRepository backward;
    RepositoryHandle hb =
        backward.attach(ServiceKind::KeyValue, "svc");
    for (auto it = keys.rbegin(); it != keys.rend(); ++it)
        hb.store(*it, kFourLarge);

    std::ostringstream a, b;
    forward.save(a);
    backward.save(b);
    EXPECT_EQ(a.str(), b.str());

    // Sorted keys are the contract the bytes follow from.
    const auto sorted = hf.keys();
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(SharedRepository, ConcurrentStoresAndLookupsAggregateExactly)
{
    // The repository is internally synchronized: handles on distinct
    // services may store/look up concurrently. Each worker touches
    // only its own class-id keys, so every count below is exact
    // regardless of interleaving. The TSan CI leg runs this at 8
    // threads.
    constexpr std::size_t kHandles = 8;
    constexpr int kPerHandle = 40;

    SharedRepository repo;
    std::vector<RepositoryHandle> handles(kHandles);
    for (std::size_t h = 0; h < kHandles; ++h)
        handles[h] = repo.attach(ServiceKind::KeyValue,
                                 "svc-" + std::to_string(h));
    EXPECT_EQ(repo.attachments(), static_cast<int>(kHandles));

    parallelFor(kHandles, 8, [&handles](std::size_t h) {
        for (int i = 0; i < kPerHandle; ++i) {
            const RepositoryKey key{static_cast<int>(h), i};
            handles[h].store(key, kFourLarge);
            EXPECT_TRUE(handles[h].lookup(key).has_value());
        }
    });

    const Repository::Stats total = repo.aggregateStats();
    EXPECT_EQ(total.stores, kHandles * kPerHandle);
    EXPECT_EQ(total.lookups, kHandles * kPerHandle);
    EXPECT_EQ(total.hits, kHandles * kPerHandle);
    EXPECT_EQ(total.misses, 0u);
    // Workers only read their own writes: no cross-service reuse.
    EXPECT_EQ(repo.aggregateCrossHits(), 0u);
    EXPECT_EQ(repo.entries(), kHandles * kPerHandle);
}

TEST(SharedRepository, ConcurrentReadersDuringWrites)
{
    // Writers fill disjoint key ranges while readers hammer the
    // whole-repository read surface (peek, keys, entries, stats,
    // toString, save). The reads' *values* are racy by design — the
    // assertions only pin what must hold at any instant — but every
    // access must be data-race-free, which the TSan leg checks.
    constexpr std::size_t kWriters = 4;
    constexpr int kPerWriter = 64;

    SharedRepository repo;
    std::vector<RepositoryHandle> handles(kWriters);
    for (std::size_t h = 0; h < kWriters; ++h)
        handles[h] = repo.attach(ServiceKind::KeyValue,
                                 "svc-" + std::to_string(h));

    parallelFor(kWriters * 2, 8, [&repo, &handles](std::size_t w) {
        if (w < kWriters) {
            for (int i = 0; i < kPerWriter; ++i)
                handles[w].store(
                    RepositoryKey{static_cast<int>(w), i},
                    kSixLarge);
            return;
        }
        const auto h = w - kWriters;
        for (int i = 0; i < kPerWriter; ++i) {
            const RepositoryKey key{static_cast<int>(h), i};
            const auto seen =
                repo.peek(ServiceKind::KeyValue, key);
            if (seen)
                EXPECT_EQ(seen->instances, kSixLarge.instances);
            EXPECT_LE(repo.entries(),
                      kWriters * static_cast<std::size_t>(
                                     kPerWriter));
            EXPECT_LE(repo.aggregateStats().stores,
                      kWriters * static_cast<std::uint64_t>(
                                     kPerWriter));
            std::ostringstream sink;
            repo.save(sink);
        }
    });

    EXPECT_EQ(repo.entries(),
              kWriters * static_cast<std::size_t>(kPerWriter));
    EXPECT_EQ(repo.aggregateStats().stores,
              kWriters * static_cast<std::uint64_t>(kPerWriter));
}

TEST(SharedRepository, ShardCountInvisibleToContentsAndSaveBytes)
{
    // The serving daemon runs many shards, the simulator runs one;
    // the two must be indistinguishable except for lock contention.
    // Same stores into 1- and 8-shard repositories: identical
    // entries, identical peek() answers, identical save() bytes.
    SharedRepository one(SharedRepository::Mode::Shared, 1);
    SharedRepository eight(SharedRepository::Mode::Shared, 8);
    EXPECT_EQ(one.shards(), 1);
    EXPECT_EQ(eight.shards(), 8);

    RepositoryHandle h1 = one.attach(ServiceKind::KeyValue, "svc");
    RepositoryHandle h8 = eight.attach(ServiceKind::KeyValue, "svc");
    RepositoryHandle r1 = one.attach(ServiceKind::Rubis, "rubis");
    RepositoryHandle r8 = eight.attach(ServiceKind::Rubis, "rubis");
    for (int c = 0; c < 50; ++c)
        for (int b = 0; b < 3; ++b) {
            h1.store({c, b}, kFourLarge);
            h8.store({c, b}, kFourLarge);
            r1.store({c, b}, kTenXL);
            r8.store({c, b}, kTenXL);
        }

    EXPECT_EQ(one.entries(), eight.entries());
    for (int c = 0; c < 50; ++c) {
        EXPECT_EQ(one.peek(ServiceKind::KeyValue, {c, 1}),
                  eight.peek(ServiceKind::KeyValue, {c, 1}));
        EXPECT_EQ(one.peek(ServiceKind::Rubis, {c, 2}),
                  eight.peek(ServiceKind::Rubis, {c, 2}));
    }
    std::ostringstream a, b;
    one.save(a);
    eight.save(b);
    EXPECT_EQ(a.str(), b.str());

    // And load() lands the same bytes at any shard count — the
    // daemon restart contract.
    std::istringstream in(a.str());
    SharedRepository reloaded = SharedRepository::load(
        in, SharedRepository::Mode::Shared, ServiceKind::Generic, 8);
    std::ostringstream c;
    reloaded.save(c);
    EXPECT_EQ(c.str(), a.str());
}

TEST(SharedRepository, VersionAdvancesOnEveryStoreAndClear)
{
    SharedRepository repo(SharedRepository::Mode::Shared, 4);
    const std::uint64_t v0 = repo.version();
    RepositoryHandle h = repo.attach(ServiceKind::KeyValue, "svc");
    h.store({0, 0}, kFourLarge);
    const std::uint64_t v1 = repo.version();
    EXPECT_GT(v1, v0);
    h.store({1, 0}, kFourLarge);
    const std::uint64_t v2 = repo.version();
    EXPECT_GT(v2, v1);
    h.clear();
    EXPECT_GT(repo.version(), v2);
}

TEST(SharedRepository, SnapshotIsFrozenSortedAndVersioned)
{
    SharedRepository repo(SharedRepository::Mode::Shared, 8);
    RepositoryHandle h = repo.attach(ServiceKind::KeyValue, "svc");
    for (int c = 0; c < 30; ++c)
        h.store({c, c % 3}, kFourLarge);

    const RepositorySnapshot snap =
        repo.snapshot(ServiceKind::KeyValue);
    EXPECT_EQ(snap.kind(), ServiceKind::KeyValue);
    EXPECT_EQ(snap.version(), repo.version());
    EXPECT_EQ(snap.entries(), repo.entries(ServiceKind::KeyValue));
    EXPECT_TRUE(std::is_sorted(
        snap.all().begin(), snap.all().end(),
        [](const RepositorySnapshot::Entry &x,
           const RepositorySnapshot::Entry &y) {
            return x.key < y.key;
        }));
    const auto hit = snap.find({7, 1});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, kFourLarge);
    EXPECT_FALSE(snap.find({7, 2}).has_value());
    EXPECT_FALSE(snap.find({30, 0}).has_value());

    // A store after collection makes the snapshot *look* stale (the
    // version moved) without disturbing its frozen entries — the
    // lookups-never-block-behind-stores contract serving relies on.
    h.store({99, 0}, kSixLarge);
    EXPECT_LT(snap.version(), repo.version());
    EXPECT_FALSE(snap.find({99, 0}).has_value());
    EXPECT_TRUE(
        repo.snapshot(ServiceKind::KeyValue).find({99, 0})
            .has_value());
}

TEST(SharedRepository, ConcurrentShardedStoresWithSnapshotReaders)
{
    // Writers hammer distinct keys across shards while readers take
    // and walk snapshots; the TSan leg runs this at 8 threads. Every
    // snapshot must be internally consistent (sorted, findable keys)
    // no matter what the writers are doing.
    constexpr std::size_t kWorkers = 8;
    constexpr int kPerWriter = 60;

    SharedRepository repo(SharedRepository::Mode::Shared, 8);
    std::vector<RepositoryHandle> handles(kWorkers);
    for (std::size_t h = 0; h < kWorkers; ++h)
        handles[h] = repo.attach(ServiceKind::KeyValue,
                                 "svc-" + std::to_string(h));

    parallelFor(kWorkers, 8, [&handles, &repo](std::size_t h) {
        if (h % 2 == 0) {
            for (int i = 0; i < kPerWriter; ++i)
                handles[h].store({static_cast<int>(h), i},
                                 kFourLarge);
        } else {
            for (int i = 0; i < kPerWriter; ++i) {
                const RepositorySnapshot snap =
                    repo.snapshot(ServiceKind::KeyValue);
                EXPECT_LE(snap.version(), repo.version());
                for (const auto &entry : snap.all())
                    EXPECT_TRUE(snap.find(entry.key).has_value());
            }
        }
    });

    EXPECT_EQ(repo.entries(),
              (kWorkers / 2) * static_cast<std::size_t>(kPerWriter));
    const RepositorySnapshot final_ =
        repo.snapshot(ServiceKind::KeyValue);
    EXPECT_EQ(final_.entries(), repo.entries());
}

TEST(SharedRepository, SharingModeNamesRoundTrip)
{
    EXPECT_STREQ(repositorySharingName(RepositorySharing::Private),
                 "private");
    EXPECT_EQ(repositorySharingFromName("shared"),
              RepositorySharing::Shared);
    EXPECT_EQ(repositorySharingFromName("isolated"),
              RepositorySharing::Isolated);
    EXPECT_EQ(
        repositorySharingFromName(
            repositorySharingName(RepositorySharing::Shared)),
        RepositorySharing::Shared);
}

} // namespace
} // namespace dejavu
