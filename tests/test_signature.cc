/**
 * @file
 * Unit tests for signature schema and tuples (core/signature.hh).
 */

#include <gtest/gtest.h>

#include "core/signature.hh"

namespace dejavu {
namespace {

TEST(SignatureSchema, ExtractsSelectedMetrics)
{
    const std::vector<std::string> names = {"a", "b", "c", "d"};
    SignatureSchema schema({1, 3}, names);
    EXPECT_EQ(schema.size(), 2);
    EXPECT_EQ(schema.names(), (std::vector<std::string>{"b", "d"}));
    EXPECT_EQ(schema.extract({10.0, 20.0, 30.0, 40.0}),
              (std::vector<double>{20.0, 40.0}));
}

TEST(SignatureSchema, ToStringMatchesPaperForm)
{
    SignatureSchema schema({0, 2}, {"m1", "m2", "m3"});
    EXPECT_EQ(schema.toString(), "WS = {m1, m3}");  // §3.3's N-tuple
}

TEST(SignatureSchema, ExtractFromSample)
{
    SignatureSchema schema({0}, {"x", "y"});
    MetricSample s;
    s.values = {5.0, 6.0};
    EXPECT_EQ(schema.extract(s), (std::vector<double>{5.0}));
}

TEST(SignatureSchemaDeath, EmptySchema)
{
    EXPECT_DEATH(SignatureSchema({}, {"a"}), "empty");
}

TEST(SignatureSchemaDeath, IndexOutOfRange)
{
    EXPECT_DEATH(SignatureSchema({5}, {"a", "b"}), "out of range");
}

TEST(SignatureSchemaDeath, NarrowVector)
{
    SignatureSchema schema({1}, {"a", "b"});
    EXPECT_DEATH(schema.extract(std::vector<double>{1.0}),
                 "too narrow");
}

TEST(WorkloadSignature, EuclideanDistance)
{
    WorkloadSignature a{{0.0, 0.0}, 0};
    WorkloadSignature b{{3.0, 4.0}, 0};
    EXPECT_DOUBLE_EQ(a.distanceTo(b), 5.0);
    EXPECT_DOUBLE_EQ(a.distanceTo(a), 0.0);
}

TEST(WorkloadSignatureDeath, DimensionMismatch)
{
    WorkloadSignature a{{1.0}, 0};
    WorkloadSignature b{{1.0, 2.0}, 0};
    EXPECT_DEATH(a.distanceTo(b), "mismatch");
}

} // namespace
} // namespace dejavu
