/**
 * @file
 * Unit tests for simulated-time helpers (common/sim_time.hh).
 */

#include <gtest/gtest.h>

#include "common/sim_time.hh"

namespace dejavu {
namespace {

TEST(SimTime, UnitRelations)
{
    EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
    EXPECT_EQ(kSecond, 1000 * kMillisecond);
    EXPECT_EQ(kMinute, 60 * kSecond);
    EXPECT_EQ(kHour, 60 * kMinute);
    EXPECT_EQ(kDay, 24 * kHour);
}

TEST(SimTime, Constructors)
{
    EXPECT_EQ(seconds(1.5), 1500 * kMillisecond);
    EXPECT_EQ(minutes(2), 120 * kSecond);
    EXPECT_EQ(hours(0.5), 30 * kMinute);
    EXPECT_EQ(days(1), 24 * kHour);
    EXPECT_EQ(milliseconds(0.5), 500 * kMicrosecond);
}

TEST(SimTime, RoundTripConversions)
{
    EXPECT_DOUBLE_EQ(toSeconds(seconds(12.5)), 12.5);
    EXPECT_DOUBLE_EQ(toMinutes(minutes(3.25)), 3.25);
    EXPECT_DOUBLE_EQ(toHours(hours(7)), 7.0);
    EXPECT_DOUBLE_EQ(toDays(days(2)), 2.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(42)), 42.0);
}

TEST(SimTime, FormatTime)
{
    EXPECT_EQ(formatTime(0), "0d 00:00:00");
    EXPECT_EQ(formatTime(days(1) + hours(2) + minutes(3) + seconds(4)),
              "1d 02:03:04");
    EXPECT_EQ(formatTime(-hours(1)), "-0d 01:00:00");
}

TEST(SimTime, SaturatingAddOrdinaryValues)
{
    EXPECT_EQ(saturatingAdd(hours(1), minutes(30)),
              hours(1) + minutes(30));
    EXPECT_EQ(saturatingAdd(hours(1), -minutes(30)), minutes(30));
    EXPECT_EQ(saturatingAdd(0, 0), 0);
}

TEST(SimTime, SaturatingAddClampsOverflow)
{
    EXPECT_EQ(saturatingAdd(kSimTimeMax, 1), kSimTimeMax);
    EXPECT_EQ(saturatingAdd(kSimTimeMax, kSimTimeMax), kSimTimeMax);
    EXPECT_EQ(saturatingAdd(kSimTimeMax - seconds(1), hours(1)),
              kSimTimeMax);
    // Still exact right at the boundary.
    EXPECT_EQ(saturatingAdd(kSimTimeMax - 1, 1), kSimTimeMax);
}

TEST(SimTime, SaturatingAddClampsUnderflow)
{
    EXPECT_EQ(saturatingAdd(INT64_MIN, -1), INT64_MIN);
    EXPECT_EQ(saturatingAdd(INT64_MIN + 1, -2), INT64_MIN);
}

} // namespace
} // namespace dejavu
