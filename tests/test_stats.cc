/**
 * @file
 * Unit tests for streaming statistics (common/stats.hh).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace dejavu {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stderror(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    RunningStats a, b, combined;
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37 - 3.0;
        combined.add(x);
        if (i % 2)
            a.add(x);
        else
            b.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, ClearResets)
{
    RunningStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
}

TEST(PercentileSampler, QuantilesOfKnownData)
{
    PercentileSampler p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-12);
    EXPECT_NEAR(p.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(p.quantile(0.95), 95.05, 0.01);
}

TEST(PercentileSampler, SingleSample)
{
    PercentileSampler p;
    p.add(7.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 7.0);
}

TEST(PercentileSampler, FractionAbove)
{
    PercentileSampler p;
    for (int i = 1; i <= 10; ++i)
        p.add(i);
    EXPECT_DOUBLE_EQ(p.fractionAbove(10.0), 0.0);
    EXPECT_DOUBLE_EQ(p.fractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.fractionAbove(5.0), 0.5);
    EXPECT_DOUBLE_EQ(p.fractionAtOrBelow(5.0), 0.5);
}

TEST(PercentileSampler, MeanAndCount)
{
    PercentileSampler p;
    p.add(2.0);
    p.add(4.0);
    EXPECT_EQ(p.count(), 2u);
    EXPECT_DOUBLE_EQ(p.mean(), 3.0);
}

TEST(PercentileSampler, InterleavedAddAndQuery)
{
    // Adding after querying must re-sort correctly.
    PercentileSampler p;
    p.add(10.0);
    p.add(20.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 20.0);
    p.add(5.0);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 20.0);
}

TEST(TimeWeightedValue, ConstantSignal)
{
    TimeWeightedValue v;
    v.set(0, 4.0);
    EXPECT_DOUBLE_EQ(v.average(hours(2)), 4.0);
}

TEST(TimeWeightedValue, StepSignal)
{
    TimeWeightedValue v;
    v.set(0, 2.0);
    v.set(hours(1), 6.0);
    // One hour at 2, one hour at 6 -> average 4.
    EXPECT_DOUBLE_EQ(v.average(hours(2)), 4.0);
}

TEST(TimeWeightedValue, IntegralSeconds)
{
    TimeWeightedValue v;
    v.set(0, 3.0);
    v.set(seconds(10), 0.0);
    EXPECT_DOUBLE_EQ(v.integralSeconds(seconds(10)), 30.0);
    EXPECT_DOUBLE_EQ(v.integralSeconds(seconds(20)), 30.0);
}

TEST(TimeWeightedValue, BeforeStart)
{
    TimeWeightedValue v;
    EXPECT_DOUBLE_EQ(v.average(0), 0.0);
    EXPECT_DOUBLE_EQ(v.integralSeconds(hours(1)), 0.0);
}

TEST(TimeWeightedValue, NonZeroStart)
{
    TimeWeightedValue v;
    v.set(hours(1), 10.0);
    v.set(hours(2), 0.0);
    EXPECT_DOUBLE_EQ(v.average(hours(3)), 5.0);
}

} // namespace
} // namespace dejavu
