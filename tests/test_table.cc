/**
 * @file
 * Unit tests for the table emitter (common/table.hh).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hh"

namespace dejavu {
namespace {

TEST(Table, HeaderAndRows)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addNumericRow({3.14159, 2.71828}, 2);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
    EXPECT_EQ(t.row(1)[0], "3.14");
    EXPECT_EQ(t.row(1)[1], "2.72");
}

TEST(Table, CsvOutput)
{
    Table t({"x", "y"});
    t.addRow({"1", "hello"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,hello\n");
}

TEST(Table, TextOutputAligned)
{
    Table t({"name", "v"});
    t.addRow({"long-name-here", "1"});
    std::ostringstream os;
    t.printText(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name-here"), std::string::npos);
    // Header line padded at least as wide as the longest cell.
    const std::string firstLine = out.substr(0, out.find('\n'));
    EXPECT_GE(firstLine.size(), std::string("long-name-here").size());
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.5, 0), "2");  // rounds
    EXPECT_EQ(Table::num(1.25, 1), "1.2");
    EXPECT_EQ(Table::num(-3.456, 2), "-3.46");
}

TEST(Table, MismatchedRowWidthDies)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Table, BannerFormat)
{
    std::ostringstream os;
    printBanner(os, "Figure 6(b): cost");
    EXPECT_EQ(os.str(), "\n=== Figure 6(b): cost ===\n");
}

} // namespace
} // namespace dejavu
