/**
 * @file
 * Unit tests for load traces and the synthetic trace library
 * (workload/trace.hh, workload/trace_library.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/trace.hh"
#include "workload/trace_library.hh"

namespace dejavu {
namespace {

TEST(LoadTrace, NormalizesToUnitPeak)
{
    LoadTrace t("t", {2.0, 4.0, 1.0});
    EXPECT_DOUBLE_EQ(t.peak(), 1.0);
    EXPECT_DOUBLE_EQ(t.at(0), 0.5);
    EXPECT_DOUBLE_EQ(t.at(1), 1.0);
    EXPECT_DOUBLE_EQ(t.at(2), 0.25);
}

TEST(LoadTrace, ClampsBeyondEnd)
{
    LoadTrace t("t", {1.0, 2.0});
    EXPECT_DOUBLE_EQ(t.at(99), 1.0);  // last sample
}

TEST(LoadTrace, AtTimePiecewiseConstant)
{
    LoadTrace t("t", {1.0, 2.0});
    EXPECT_DOUBLE_EQ(t.atTime(0), 0.5);
    EXPECT_DOUBLE_EQ(t.atTime(kHour - 1), 0.5);
    EXPECT_DOUBLE_EQ(t.atTime(kHour), 1.0);
    EXPECT_DOUBLE_EQ(t.atTime(-5), 0.5);  // clamped to start
}

TEST(LoadTrace, DayHourIndexing)
{
    std::vector<double> load(48, 0.5);
    load[25] = 1.0;  // day 1, hour 1
    LoadTrace t("t", load);
    EXPECT_DOUBLE_EQ(t.at(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(t.at(0, 1), 0.5);
    EXPECT_EQ(t.daysCovered(), 2);
}

TEST(LoadTrace, SlicePreservesValues)
{
    LoadTrace t("t", {1.0, 2.0, 4.0, 3.0});
    LoadTrace s = t.slice(1, 2);
    EXPECT_EQ(s.hours(), 2u);
    EXPECT_DOUBLE_EQ(s.at(0), 0.5);   // 2.0 / 4.0 from original
    EXPECT_DOUBLE_EQ(s.at(1), 1.0);   // 4.0 / 4.0
}

TEST(TraceLibrary, SevenDayTraces)
{
    EXPECT_EQ(makeMessengerTrace().hours(), 7u * 24);
    EXPECT_EQ(makeHotmailTrace().hours(), 7u * 24);
}

TEST(TraceLibrary, DiurnalShape)
{
    // Peak hours must carry much more load than night hours.
    for (const LoadTrace &t :
         {makeMessengerTrace(), makeHotmailTrace()}) {
        double night = 0.0, day = 0.0;
        for (int h = 1; h <= 4; ++h)
            night += t.at(0, h);
        for (int h = 12; h <= 15; ++h)
            day += t.at(0, h);
        EXPECT_GT(day, 2.0 * night) << t.name();
    }
}

TEST(TraceLibrary, WeekendDip)
{
    const LoadTrace t = makeMessengerTrace();
    // Compare weekday (day 1) vs weekend (day 5) midday loads.
    double weekday = 0.0, weekend = 0.0;
    for (int h = 11; h <= 14; ++h) {
        weekday += t.at(1, h);
        weekend += t.at(5, h);
    }
    EXPECT_LT(weekend, weekday);
}

TEST(TraceLibrary, DeterministicPerSeed)
{
    const LoadTrace a = makeMessengerTrace();
    const LoadTrace b = makeMessengerTrace();
    ASSERT_EQ(a.hours(), b.hours());
    for (std::size_t h = 0; h < a.hours(); ++h)
        EXPECT_DOUBLE_EQ(a.at(h), b.at(h));
}

TEST(TraceLibrary, SeedChangesJitter)
{
    TraceOptions o1, o2;
    o2.seed = 999;
    const LoadTrace a = makeMessengerTrace(o1);
    const LoadTrace b = makeMessengerTrace(o2);
    int different = 0;
    for (std::size_t h = 0; h < a.hours(); ++h)
        if (a.at(h) != b.at(h))
            ++different;
    EXPECT_GT(different, 100);
}

TEST(TraceLibrary, HotmailDayFourAnomalyIsGlobalPeak)
{
    const LoadTrace t = makeHotmailTrace();
    // The day-4 flash crowd (hours 21-22 of 0-based day 3) must be
    // the trace's global maximum and exceed everything day 1 offers.
    const double anomaly = t.at(3, 21);
    EXPECT_DOUBLE_EQ(anomaly, 1.0);
    double dayOneMax = 0.0;
    for (int h = 0; h < 24; ++h)
        dayOneMax = std::max(dayOneMax, t.at(0, h));
    EXPECT_LT(dayOneMax, 0.95 * anomaly);
}

TEST(TraceLibrary, SineWavePeriodicity)
{
    const LoadTrace t = makeSineTrace(48, 12.0, 0.2, 7);
    // Values one period apart are near-identical (up to 1% jitter).
    for (int h = 0; h < 24; ++h)
        EXPECT_NEAR(t.at(static_cast<std::size_t>(h)),
                    t.at(static_cast<std::size_t>(h + 12)), 0.08);
}

TEST(TraceLibrary, SineWaveRange)
{
    const LoadTrace t = makeSineTrace(100, 10.0, 0.3, 7);
    for (std::size_t h = 0; h < t.hours(); ++h) {
        EXPECT_GE(t.at(h), 0.2);
        EXPECT_LE(t.at(h), 1.0);
    }
}

TEST(TraceLibraryDeath, BadArguments)
{
    EXPECT_DEATH(makeSineTrace(0, 10.0), "at least one hour");
    EXPECT_DEATH(makeSineTrace(10, -1.0), "period");
    TraceOptions o;
    o.numDays = 0;
    EXPECT_DEATH(makeMessengerTrace(o), "at least one day");
}

} // namespace
} // namespace dejavu
