/**
 * @file
 * Unit tests for the linear-search Tuner (core/tuner.hh).
 */

#include <gtest/gtest.h>

#include "core/tuner.hh"
#include "counters/profiler.hh"
#include "services/keyvalue_service.hh"
#include "sim/cluster.hh"
#include "sim/event_queue.hh"

namespace dejavu {
namespace {

class TunerTest : public ::testing::Test
{
  protected:
    EventQueue queue;
    Cluster cluster{queue, {}};
    KeyValueService service{queue, cluster, Rng(3)};
    ProfilerHost profiler{
        service, Monitor(service, CounterModel(ServiceKind::KeyValue,
                                               Rng(5))),
        Rng(7)};

    Workload workloadFor(double clients)
    {
        return {cassandraUpdateHeavy(), clients};
    }
};

TEST_F(TunerTest, FindsMinimalAdequateAllocation)
{
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const auto result = tuner.tune(workloadFor(20000.0));
    EXPECT_TRUE(result.feasible);
    // The chosen allocation meets the SLO...
    EXPECT_LE(service.hypotheticalLatencyMs(workloadFor(20000.0),
                                            result.allocation),
              60.0);
    // ...and one instance less does not (minimality).
    if (result.allocation.instances > 1) {
        ResourceAllocation smaller = result.allocation;
        --smaller.instances;
        EXPECT_GT(service.hypotheticalLatencyMs(workloadFor(20000.0),
                                                smaller),
                  60.0 * 0.9);
    }
}

TEST_F(TunerTest, AllocationMonotoneInLoad)
{
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    int prev = 0;
    for (double clients : {5000.0, 15000.0, 30000.0, 45000.0}) {
        const auto r = tuner.tune(workloadFor(clients));
        EXPECT_GE(r.allocation.instances, prev);
        prev = r.allocation.instances;
    }
}

TEST_F(TunerTest, ExperimentsCostTime)
{
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const auto r = tuner.tune(workloadFor(25000.0));
    EXPECT_GT(r.experiments, 1);
    EXPECT_EQ(r.tuningTime,
              r.experiments * profiler.config().experimentDuration);
}

TEST_F(TunerTest, InterferenceRequiresMoreResources)
{
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const auto clean = tuner.tune(workloadFor(20000.0), 0.0);
    const auto dirty = tuner.tune(workloadFor(20000.0), 0.20);
    EXPECT_GT(dirty.allocation.instances, clean.allocation.instances);
}

TEST_F(TunerTest, InfeasibleFallsBackToFullCapacity)
{
    Tuner tuner(profiler, Slo::latency(60.0), scaleOutSearchSpace(10));
    const auto r = tuner.tune(workloadFor(500000.0));
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.allocation.instances, 10);
    EXPECT_EQ(r.experiments, 10);  // exhausted the search space
}

TEST_F(TunerTest, QosSloSearch)
{
    Tuner tuner(profiler, Slo::qos(95.0),
                scaleUpSearchSpace(10, {InstanceType::Large,
                                        InstanceType::XLarge}));
    // Light load: large suffices.
    const auto light = tuner.tune(workloadFor(5000.0));
    EXPECT_EQ(light.allocation.type, InstanceType::Large);
    // Heavy load: extra-large required.
    const auto heavy = tuner.tune(workloadFor(55000.0));
    EXPECT_EQ(heavy.allocation.type, InstanceType::XLarge);
}

TEST_F(TunerTest, SearchSpaceSortedByCapacity)
{
    std::vector<ResourceAllocation> unordered = {
        {5, InstanceType::Large},
        {1, InstanceType::Large},
        {3, InstanceType::Large},
    };
    Tuner tuner(profiler, Slo::latency(60.0), unordered);
    const auto &space = tuner.searchSpace();
    for (std::size_t i = 1; i < space.size(); ++i)
        EXPECT_TRUE(lessCapacity(space[i - 1], space[i]) ||
                    space[i - 1] == space[i]);
}

TEST(TunerHelpers, ScaleOutSpace)
{
    const auto space = scaleOutSearchSpace(4);
    ASSERT_EQ(space.size(), 4u);
    EXPECT_EQ(space.front().instances, 1);
    EXPECT_EQ(space.back().instances, 4);
}

TEST(TunerHelpers, ScaleUpSpace)
{
    const auto space = scaleUpSearchSpace(5);
    ASSERT_EQ(space.size(), 2u);
    EXPECT_EQ(space[0].type, InstanceType::Large);
    EXPECT_EQ(space[1].type, InstanceType::XLarge);
    EXPECT_EQ(space[0].instances, 5);
}

} // namespace
} // namespace dejavu
