/**
 * @file
 * Unit tests for the VM lifecycle and cluster scaling (sim/vm.hh,
 * sim/cluster.hh).
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/vm.hh"

namespace dejavu {
namespace {

TEST(Vm, PreCreatedStartOnlyWarmsUp)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    EXPECT_EQ(vm.state(), VmState::Stopped);
    vm.start(q, /*preCreated=*/true);
    EXPECT_EQ(vm.state(), VmState::Warming);
    q.runUntil(seconds(19));
    EXPECT_EQ(vm.state(), VmState::Warming);
    q.runUntil(seconds(21));
    EXPECT_EQ(vm.state(), VmState::Running);
}

TEST(Vm, ColdBootPassesThroughBooting)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    vm.start(q, /*preCreated=*/false);
    EXPECT_EQ(vm.state(), VmState::Booting);
    q.runUntil(seconds(91));
    EXPECT_EQ(vm.state(), VmState::Warming);
    q.runUntil(seconds(111));
    EXPECT_EQ(vm.state(), VmState::Running);
}

TEST(Vm, StopDuringWarmupCancelsStart)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    vm.start(q, true);
    vm.stop(q);
    q.runUntil(minutes(5));
    EXPECT_EQ(vm.state(), VmState::Stopped);  // stale event ignored
}

TEST(Vm, RestartAfterStopWorks)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    vm.start(q, true);
    vm.stop(q);
    vm.start(q, true);
    q.runUntil(minutes(1));
    EXPECT_EQ(vm.state(), VmState::Running);
}

TEST(Vm, EffectiveCapacityReflectsInterference)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    EXPECT_DOUBLE_EQ(vm.effectiveCapacityFactor(), 0.0);  // stopped
    vm.start(q, true);
    q.runUntil(minutes(1));
    EXPECT_DOUBLE_EQ(vm.effectiveCapacityFactor(), 1.0);
    vm.setInterference(0.2);
    EXPECT_DOUBLE_EQ(vm.effectiveCapacityFactor(), 0.8);
}

TEST(VmDeath, InterferenceOutOfRange)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    EXPECT_DEATH(vm.setInterference(0.99), "out of range");
}

TEST(VmDeath, RetypeWhileRunningPanics)
{
    EventQueue q;
    Vm vm(0, InstanceType::Large);
    vm.start(q, true);
    q.runUntil(minutes(1));
    EXPECT_DEATH(vm.setType(InstanceType::XLarge), "stopped");
}

TEST(Cluster, StartsWithOneInstance)
{
    EventQueue q;
    Cluster c(q, {});
    EXPECT_EQ(c.activeInstances(), 1);
    q.runUntil(minutes(1));
    EXPECT_EQ(c.runningInstances(), 1);
}

TEST(Cluster, ScaleOutAddsWarmingInstances)
{
    EventQueue q;
    Cluster c(q, {});
    q.runUntil(minutes(1));
    c.setActiveInstances(4);
    EXPECT_EQ(c.activeInstances(), 4);
    EXPECT_EQ(c.runningInstances(), 1);  // others still warming
    q.runUntil(minutes(2));
    EXPECT_EQ(c.runningInstances(), 4);
}

TEST(Cluster, ScaleInStopsImmediately)
{
    EventQueue q;
    Cluster c(q, {});
    c.setActiveInstances(5);
    q.runUntil(minutes(1));
    c.setActiveInstances(2);
    EXPECT_EQ(c.runningInstances(), 2);
}

TEST(Cluster, ScaleUpRestartsWithNewType)
{
    EventQueue q;
    Cluster c(q, {});
    c.setActiveInstances(3);
    q.runUntil(minutes(1));
    c.setInstanceType(InstanceType::XLarge);
    // Retype restarts the VMs: capacity dips until warm.
    EXPECT_EQ(c.runningInstances(), 0);
    q.runUntil(minutes(2));
    EXPECT_EQ(c.runningInstances(), 3);
    EXPECT_DOUBLE_EQ(c.effectiveComputeUnits(), 3 * 8.0);
}

TEST(Cluster, DeployChangesCountAndType)
{
    EventQueue q;
    Cluster c(q, {});
    c.deploy({5, InstanceType::XLarge});
    q.runUntil(minutes(1));
    EXPECT_EQ(c.target(), (ResourceAllocation{5, InstanceType::XLarge}));
    EXPECT_DOUBLE_EQ(c.effectiveComputeUnits(), 40.0);
}

TEST(Cluster, EffectiveUnitsReflectInterference)
{
    EventQueue q;
    Cluster c(q, {});
    c.setActiveInstances(2);
    q.runUntil(minutes(1));
    c.vm(0).setInterference(0.5);
    EXPECT_DOUBLE_EQ(c.effectiveComputeUnits(), 4.0 * 0.5 + 4.0);
    EXPECT_DOUBLE_EQ(c.meanInterference(), 0.25);
}

TEST(Cluster, MaxAllocationTracksLargestTypeSeen)
{
    EventQueue q;
    Cluster c(q, {});
    EXPECT_EQ(c.maxAllocation(),
              (ResourceAllocation{10, InstanceType::Large}));
    c.deploy({2, InstanceType::XLarge});
    EXPECT_EQ(c.maxAllocation(),
              (ResourceAllocation{10, InstanceType::XLarge}));
}

TEST(Cluster, BillingAccruesByTargetCount)
{
    EventQueue q;
    Cluster c(q, {});
    q.runUntil(hours(1));          // 1 instance-hour at $0.34
    c.setActiveInstances(3);
    q.runUntil(hours(2));          // + 3 instance-hours
    EXPECT_NEAR(c.accruedDollars(), 0.34 * (1 + 3), 1e-9);
}

TEST(ClusterDeath, DeployOutsidePool)
{
    EventQueue q;
    Cluster c(q, {});
    EXPECT_DEATH(c.deploy({11, InstanceType::Large}), "pool bounds");
    EXPECT_DEATH(c.setActiveInstances(0), "outside");
}

} // namespace
} // namespace dejavu
