/**
 * @file
 * Tests for the unified profiling work queue: typed work items
 * (signature + tuner) arbitrated by one slot scheduler, same-key
 * batching through the Coalescer with N-way result fan-out, dynamic
 * tuner occupancy, and cancellation — while queued, during grant
 * (granted but not started), and en masse via cancelWhere.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "profiling/work_queue.hh"
#include "sim/simulation.hh"

namespace dejavu {
namespace {

class WorkQueueTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _before = logLevel();
        setLogLevel(LogLevel::Silent);
    }
    void TearDown() override { setLogLevel(_before); }

    /** A signature item for @p owner with a shareable key. */
    static WorkItem signatureItem(std::size_t owner, int classId,
                                  int bucket = 0,
                                  SimTime duration = seconds(10),
                                  ServiceKind kind =
                                      ServiceKind::KeyValue)
    {
        WorkItem item;
        item.kind = WorkKind::Signature;
        item.owner = owner;
        item.duration = duration;
        item.key = {kind, classId, bucket};
        return item;
    }

    static WorkItem tunerItem(std::size_t owner, int classId,
                              int bucket,
                              SimTime estimate = minutes(9))
    {
        WorkItem item;
        item.kind = WorkKind::Tuner;
        item.owner = owner;
        item.duration = estimate;
        item.dynamicDuration = true;
        item.key = {ServiceKind::KeyValue, classId, bucket};
        return item;
    }

    /** One observed run, for asserting fan-out and slot charging. */
    struct Ran
    {
        std::size_t owner;
        SimTime startedAt;
        std::size_t host;
        SimTime slotDuration;
        bool coalesced;
    };

    /** RunFn recording into @p runs; returns the nominal duration. */
    static ProfilingWorkQueue::RunFn recorder(std::vector<Ran> &runs)
    {
        return [&runs](const ProfilingWorkQueue::WorkGrant &g) {
            runs.push_back({g.item->owner, g.startedAt, g.host,
                            g.slotDuration, g.coalesced});
            return g.item->duration;
        };
    }

  private:
    LogLevel _before = LogLevel::Info;
};

TEST_F(WorkQueueTest, GrantsInArrivalOrderOnOneHost)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1);
    std::vector<Ran> runs;
    for (std::size_t owner = 0; owner < 3; ++owner)
        queue.submit(signatureItem(owner, static_cast<int>(owner)),
                     recorder(runs));
    EXPECT_EQ(queue.waitingItems(), 2u);  // first granted immediately
    sim.runUntil(minutes(5));

    ASSERT_EQ(runs.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(runs[i].owner, i);
        EXPECT_EQ(runs[i].startedAt,
                  static_cast<SimTime>(i) * seconds(10));
        EXPECT_EQ(runs[i].host, 0u);
        EXPECT_FALSE(runs[i].coalesced);
        EXPECT_EQ(runs[i].slotDuration, seconds(10));
    }
    EXPECT_EQ(queue.stats().signatureSlots, 3u);
    EXPECT_EQ(queue.stats().coalescedSignatures, 0u);
    EXPECT_EQ(queue.busyHosts(), 0);
    EXPECT_EQ(queue.waitingItems(), 0u);
}

TEST_F(WorkQueueTest, SameKeyCollapsesToOneSlotWithFanOut)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1, /*coalesce=*/true);
    std::vector<Ran> runs;

    // Occupy the host so the same-key arrivals actually wait (an
    // idle pool grants the first item before a peer can join it).
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    const int kFanOut = 4;
    for (std::size_t owner = 0; owner < kFanOut; ++owner)
        queue.submit(signatureItem(owner, /*classId=*/3),
                     recorder(runs));
    // One scheduler-visible entry for the whole batch.
    EXPECT_EQ(queue.waitingEntries(), 1u);
    EXPECT_EQ(queue.waitingItems(), static_cast<std::size_t>(kFanOut));
    sim.runUntil(minutes(5));

    ASSERT_EQ(runs.size(), 1u + kFanOut);
    // All four batch members ran at the same slot start, on the same
    // host, and only the leader was charged the slot.
    for (int i = 1; i <= kFanOut; ++i) {
        EXPECT_EQ(runs[static_cast<std::size_t>(i)].startedAt,
                  seconds(30));
        EXPECT_EQ(runs[static_cast<std::size_t>(i)].host, 0u);
    }
    EXPECT_FALSE(runs[1].coalesced);
    EXPECT_EQ(runs[1].slotDuration, seconds(10));
    for (int i = 2; i <= kFanOut; ++i) {
        EXPECT_TRUE(runs[static_cast<std::size_t>(i)].coalesced);
        EXPECT_EQ(runs[static_cast<std::size_t>(i)].slotDuration, 0);
    }
    EXPECT_EQ(queue.stats().signatureSlots, 2u);  // blocker + batch
    EXPECT_EQ(queue.stats().coalescedSignatures,
              static_cast<std::uint64_t>(kFanOut - 1));
    EXPECT_EQ(queue.coalescer().stats().batches, 1u);
    EXPECT_EQ(queue.coalescer().stats().fanOuts,
              static_cast<std::uint64_t>(kFanOut - 1));
}

TEST_F(WorkQueueTest, BatchOccupiesTheLongestMembersDuration)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1, /*coalesce=*/true);
    std::vector<Ran> runs;
    queue.submit(signatureItem(9, 7, 0, seconds(5)), recorder(runs));
    queue.submit(signatureItem(0, 3, 0, seconds(10)), recorder(runs));
    queue.submit(signatureItem(1, 3, 0, seconds(25)), recorder(runs));
    // A later, different-key item starts only after the batch's
    // longest member's occupancy elapsed: 5 + max(10, 25).
    queue.submit(signatureItem(2, 4, 0, seconds(10)), recorder(runs));
    sim.runUntil(minutes(5));
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[1].slotDuration, seconds(25));
    EXPECT_EQ(runs.back().owner, 2u);
    EXPECT_EQ(runs.back().startedAt, seconds(30));
}

TEST_F(WorkQueueTest, DifferentKeysNeverCoalesce)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1, /*coalesce=*/true);
    std::vector<Ran> runs;
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    // Same class, different interference bucket: measured under
    // different co-location pressure — must not merge.
    queue.submit(signatureItem(0, 3, /*bucket=*/0), recorder(runs));
    queue.submit(signatureItem(1, 3, /*bucket=*/2), recorder(runs));
    // Same class and bucket, different service kind.
    queue.submit(signatureItem(2, 3, 0, seconds(10),
                               ServiceKind::Rubis),
                 recorder(runs));
    // Unknown class (-1): no reuse identity.
    queue.submit(signatureItem(3, -1), recorder(runs));
    queue.submit(signatureItem(4, -1), recorder(runs));
    EXPECT_EQ(queue.waitingEntries(), 5u);
    sim.runUntil(minutes(10));
    EXPECT_EQ(queue.stats().signatureSlots, 6u);
    EXPECT_EQ(queue.stats().coalescedSignatures, 0u);
    EXPECT_EQ(queue.coalescer().stats().fanOuts, 0u);
}

TEST_F(WorkQueueTest, CoalescingOffKeepsEveryItemItsOwnSlot)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1, /*coalesce=*/false);
    std::vector<Ran> runs;
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    queue.submit(signatureItem(0, 3), recorder(runs));
    queue.submit(signatureItem(1, 3), recorder(runs));
    EXPECT_EQ(queue.waitingEntries(), 2u);
    sim.runUntil(minutes(5));
    EXPECT_EQ(queue.stats().signatureSlots, 3u);
    EXPECT_EQ(queue.stats().coalescedSignatures, 0u);
}

TEST_F(WorkQueueTest, TunerOccupancyComesFromTheRunCallback)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1);
    std::vector<Ran> runs;
    // Scheduler sees the 9-minute estimate, but the "search" stops
    // after 2 minutes — the host must free then, not at the
    // estimate.
    queue.submit(tunerItem(0, 3, 1, minutes(9)),
                 [&runs](const ProfilingWorkQueue::WorkGrant &g) {
                     runs.push_back({g.item->owner, g.startedAt,
                                     g.host, g.slotDuration,
                                     g.coalesced});
                     return minutes(2);
                 });
    queue.submit(signatureItem(1, 4), recorder(runs));
    sim.runUntil(minutes(30));
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].slotDuration, minutes(9));  // the estimate
    EXPECT_EQ(runs[1].startedAt, minutes(2));     // actual release
    EXPECT_EQ(queue.stats().tunerSlots, 1u);
    EXPECT_EQ(queue.stats().signatureSlots, 1u);
}

TEST_F(WorkQueueTest, CancelWhileQueuedNeverRunsAndNotifies)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1);
    std::vector<Ran> runs;
    std::vector<std::pair<WorkItemId, WorkCancelReason>> cancelled;
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    const WorkItemId doomed = queue.submit(
        signatureItem(0, 3), recorder(runs),
        [&cancelled](const WorkItem &item, WorkCancelReason reason) {
            cancelled.emplace_back(item.id, reason);
        });
    queue.submit(signatureItem(1, 4), recorder(runs));
    EXPECT_EQ(queue.waitingItems(), 2u);

    EXPECT_TRUE(queue.cancelItem(doomed));
    EXPECT_EQ(queue.waitingItems(), 1u);
    EXPECT_EQ(queue.state(doomed),
              ProfilingWorkQueue::ItemState::Cancelled);
    ASSERT_EQ(cancelled.size(), 1u);
    EXPECT_EQ(cancelled[0].first, doomed);
    EXPECT_EQ(cancelled[0].second, WorkCancelReason::Explicit);
    // Cancelling twice is a no-op.
    EXPECT_FALSE(queue.cancelItem(doomed));

    sim.runUntil(minutes(5));
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[1].owner, 1u);
    EXPECT_EQ(runs[1].startedAt, seconds(30));  // no dead slot paid
    EXPECT_EQ(queue.stats().cancelledQueued, 1u);
}

TEST_F(WorkQueueTest, CancelDuringGrantSkipsWorkAndFreesHost)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1);
    std::vector<Ran> runs;
    bool cancelNotified = false;

    // Submit from inside an event: the free host grants immediately
    // and schedules the slot start for the same instant — cancelling
    // before that event fires is the grant window.
    sim.queue().scheduleAfter(seconds(1), [&] {
        const WorkItemId id = queue.submit(
            signatureItem(0, 3), recorder(runs),
            [&cancelNotified](const WorkItem &, WorkCancelReason) {
                cancelNotified = true;
            });
        EXPECT_EQ(queue.state(id),
                  ProfilingWorkQueue::ItemState::Granted);
        EXPECT_EQ(queue.busyHosts(), 1);
        EXPECT_TRUE(queue.cancelItem(id));
    });
    sim.runUntil(minutes(5));

    EXPECT_TRUE(cancelNotified);
    EXPECT_TRUE(runs.empty());
    EXPECT_EQ(queue.stats().cancelledGranted, 1u);
    EXPECT_EQ(queue.stats().signatureSlots, 0u);
    // The host came back: later work is served normally.
    EXPECT_EQ(queue.busyHosts(), 0);
    queue.submit(signatureItem(1, 4), recorder(runs));
    sim.runFor(minutes(5));
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].owner, 1u);
}

TEST_F(WorkQueueTest, CancellingTheLeaderPromotesAFollower)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1, /*coalesce=*/true);
    std::vector<Ran> runs;
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    const WorkItemId leader =
        queue.submit(signatureItem(0, 3), recorder(runs));
    queue.submit(signatureItem(1, 3), recorder(runs));
    queue.submit(signatureItem(2, 3), recorder(runs));
    EXPECT_EQ(queue.waitingEntries(), 1u);

    EXPECT_TRUE(queue.cancelItem(leader));
    EXPECT_EQ(queue.waitingEntries(), 1u);  // batch survives
    EXPECT_EQ(queue.waitingItems(), 2u);
    // New same-key arrivals still join the (re-led) batch.
    queue.submit(signatureItem(3, 3), recorder(runs));
    EXPECT_EQ(queue.waitingEntries(), 1u);
    sim.runUntil(minutes(5));

    ASSERT_EQ(runs.size(), 4u);  // blocker + 3 surviving members
    EXPECT_EQ(runs[1].owner, 1u);  // promoted leader
    EXPECT_FALSE(runs[1].coalesced);
    EXPECT_TRUE(runs[2].coalesced);
    EXPECT_TRUE(runs[3].coalesced);
    EXPECT_EQ(queue.stats().signatureSlots, 2u);
    EXPECT_EQ(queue.stats().coalescedSignatures, 2u);
}

TEST_F(WorkQueueTest, CancelWhereSweepsMatchingItems)
{
    Simulation sim(1);
    ProfilingWorkQueue queue(sim, nullptr, 1);
    std::vector<Ran> runs;
    std::vector<WorkCancelReason> reasons;
    const auto onCancel = [&reasons](const WorkItem &,
                                     WorkCancelReason reason) {
        reasons.push_back(reason);
    };
    queue.submit(signatureItem(9, 7, 0, seconds(30)), recorder(runs));
    queue.submit(tunerItem(0, 3, 1), recorder(runs), onCancel);
    queue.submit(tunerItem(1, 3, 1), recorder(runs), onCancel);
    queue.submit(tunerItem(2, 3, 2), recorder(runs), onCancel);

    const WorkKey key{ServiceKind::KeyValue, 3, 1};
    const std::size_t swept = queue.cancelWhere(
        [&key](const WorkItem &item) {
            return item.kind == WorkKind::Tuner && item.key == key;
        },
        WorkCancelReason::Reuse);
    EXPECT_EQ(swept, 2u);
    ASSERT_EQ(reasons.size(), 2u);
    EXPECT_EQ(reasons[0], WorkCancelReason::Reuse);
    EXPECT_EQ(queue.stats().tunerCancelledForReuse, 2u);

    sim.runUntil(hours(1));
    // The bucket-2 tuner survived and consumed the only tuner slot.
    EXPECT_EQ(queue.stats().tunerSlots, 1u);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[1].owner, 2u);
}

TEST_F(WorkQueueTest, DebtHooksRefreshAndSpend)
{
    Simulation sim(1);
    // SLO-debt policy with live debt injected through the probe: the
    // deepest debtor jumps the queue, and the grant spends its debt.
    ProfilingWorkQueue queue(
        sim, makeSlotScheduler(SlotPolicy::SloDebtFirst), 1);
    std::vector<double> debt{0.0, 5.0, 1.0};
    std::vector<Ran> runs;
    queue.setDebtProbe([&debt](const WorkItem &item) {
        return debt[item.owner];
    });
    queue.setDebtSpend([&debt](const WorkItem &item) {
        debt[item.owner] = 0.0;
    });
    queue.submit(signatureItem(0, 0, 0, seconds(30)), recorder(runs));
    queue.submit(signatureItem(1, 1), recorder(runs));
    queue.submit(signatureItem(2, 2), recorder(runs));
    sim.runUntil(minutes(5));
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[1].owner, 1u);  // deepest debtor first
    EXPECT_EQ(runs[2].owner, 2u);
    EXPECT_DOUBLE_EQ(debt[1], 0.0);  // spent at grant
}

} // namespace
} // namespace dejavu
