#!/usr/bin/env python3
"""Gate bench throughput/latency against a committed baseline.

Two bench JSON dialects are understood, told apart by the ``bench``
field; baseline and fresh file must be the same dialect:

``fleet_tails_huge`` — produced by ``bench_fleet_tails --huge
[--smoke] --json <path>``: a ``cells`` array keyed by (services,
hosts, policy, mix) carrying ``events_per_s``. The ``mix`` field tags
the scenario family ("mixed" for the scale plan,
"ycsb+daemons+hostloss" for the conformance cell); cells written
before the field existed default to "mixed". A cell regresses when
its fresh ``events_per_s`` drops more than the threshold (default
20%) below the baseline's.

``serving`` — produced by ``bench_serving [--smoke] --json <path>``:
a ``cells`` array keyed by (sessions, clients, shards, mode) carrying
``lookups_per_s`` and ``p99_ns``. A cell regresses when its fresh
``lookups_per_s`` drops more than the threshold (default 50%) below
the baseline's, or its fresh ``p99_ns`` rises more than
``--p99-threshold`` (default 3.0, i.e. 4x) above it. The serving
defaults are looser than the fleet ones on purpose: sub-microsecond
round-trip times are far more sensitive to the host (frequency
scaling, noisy neighbors) than the fleet sweep's aggregate event
rate, and the gate exists to catch algorithmic cliffs — a lock
serializing the lookup path, an allocation sneaking back into the
codec — not machine-to-machine noise.

In both dialects the committed baseline (BENCH_fleet.json /
BENCH_serving.json at the repo root) comes from the full run; CI
produces a fresh ``--smoke`` file on every push. The plans
deliberately overlap on a subset of cells so a smoke run is
comparable against the full-run baseline.

Exit status: 0 when every comparable cell passes, 1 when any cell
regresses, 2 on malformed input, mismatched dialects or no comparable
cells.
"""

import argparse
import json
import sys


def die(message):
    """Report a usage/input error with the documented exit status 2
    (sys.exit(str) would exit 1, conflating bad input with a real
    regression)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def read_doc(path):
    """Load one bench JSON; return (dialect, cells-by-identity-key)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {path}: {err}")
    bench = doc.get("bench")
    if bench not in ("fleet_tails_huge", "serving") or "cells" not in doc:
        die(f"{path} is not a fleet_tails --huge or serving bench JSON")
    cells = {}
    for cell in doc["cells"]:
        try:
            if bench == "fleet_tails_huge":
                key = (int(cell["services"]), int(cell["hosts"]),
                       str(cell["policy"]),
                       str(cell.get("mix", "mixed")))
                cells[key] = {"rate": float(cell["events_per_s"])}
            else:
                key = (int(cell["sessions"]), int(cell["clients"]),
                       int(cell["shards"]), str(cell["mode"]))
                cells[key] = {"rate": float(cell["lookups_per_s"]),
                              "p99_ns": float(cell["p99_ns"])}
        except (KeyError, TypeError, ValueError):
            die(f"malformed cell in {path}: {cell}")
    if not cells:
        die(f"{path} has no cells")
    return bench, cells


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline",
                        help="committed full-run JSON (BENCH_fleet"
                             ".json or BENCH_serving.json)")
    parser.add_argument("fresh",
                        help="freshly produced [--smoke] JSON")
    parser.add_argument("--threshold", type=float, default=None,
                        help="max tolerated throughput drop as a "
                             "fraction (default: 0.20 fleet, 0.50 "
                             "serving)")
    parser.add_argument("--p99-threshold", type=float, default=3.0,
                        help="serving only: max tolerated p99 rise "
                             "as a fraction (default: 3.0, i.e. 4x)")
    args = parser.parse_args()

    base_kind, baseline = read_doc(args.baseline)
    fresh_kind, fresh = read_doc(args.fresh)
    if base_kind != fresh_kind:
        die(f"dialect mismatch: {args.baseline} is {base_kind}, "
            f"{args.fresh} is {fresh_kind}")
    threshold = args.threshold if args.threshold is not None else (
        0.20 if base_kind == "fleet_tails_huge" else 0.50)

    common = sorted(set(baseline) & set(fresh))
    if not common:
        die("no comparable cells between the two files")

    failures = 0
    for key in common:
        was, now = baseline[key], fresh[key]
        drop = 0.0 if was["rate"] <= 0 else \
            (was["rate"] - now["rate"]) / was["rate"]
        fail = drop > threshold
        detail = ""
        if base_kind == "serving":
            rise = 0.0 if was["p99_ns"] <= 0 else \
                (now["p99_ns"] - was["p99_ns"]) / was["p99_ns"]
            fail = fail or rise > args.p99_threshold
            detail = (f"   p99 {was['p99_ns']:>9.0f} -> "
                      f"{now['p99_ns']:>9.0f} ns ({rise:+.0%})")
        failures += fail
        verdict = "FAIL" if fail else "ok"
        if base_kind == "fleet_tails_huge":
            services, hosts, policy, mix = key
            label = (f"N={services:<6} M={hosts:<2} {policy:<9} "
                     f"{mix:<21}")
            unit = "ev/s"
        else:
            sessions, clients, shards, mode = key
            label = (f"sessions={sessions:<6} clients={clients:<2} "
                     f"shards={shards:<2} {mode:<7}")
            unit = "lk/s"
        print(f"{verdict:4}  {label} baseline {was['rate']:>12.0f} "
              f"{unit}   fresh {now['rate']:>12.0f} {unit}   "
              f"drop {drop:+.1%}{detail}")

    print(f"\n{len(common)} comparable cell(s), {failures} "
          f"regression(s) beyond {threshold:.0%}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
