#!/usr/bin/env python3
"""Gate event-queue throughput against a committed bench baseline.

Both inputs are JSON files produced by ``bench_fleet_tails --huge
[--smoke] --json <path>``: a ``cells`` array with one entry per
(services, hosts, policy, mix) sweep cell carrying ``events_per_s``
and ``peak_rss_bytes``. The ``mix`` field tags the scenario family
("mixed" for the scale plan, "ycsb+daemons+hostloss" for the
conformance cell); cells written before the field existed default to
"mixed". The committed baseline (BENCH_fleet.json at the repo root)
comes from the full ``--huge`` run; CI produces a fresh ``--huge
--smoke`` file on every push. The two plans deliberately overlap on
the (services=1000, hosts=2) cells and the conformance cell so a
smoke run is comparable against the full-run baseline.

A cell regresses when its fresh ``events_per_s`` drops more than
``--threshold`` (default 20%) below the baseline's for the same
(services, hosts, policy, mix) key. The default is deliberately loose
because baseline and CI run on different machines; it catches
algorithmic cliffs (an accidental O(N) in the queue's hot path), not
single-digit noise.

Exit status: 0 when every comparable cell passes, 1 when any cell
regresses, 2 on malformed input or no comparable cells.
"""

import argparse
import json
import sys


def die(message):
    """Report a usage/input error with the documented exit status 2
    (sys.exit(str) would exit 1, conflating bad input with a real
    regression)."""
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def read_cells(path):
    """Load one bench JSON and index its cells by identity key."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {path}: {err}")
    if doc.get("bench") != "fleet_tails_huge" or "cells" not in doc:
        die(f"{path} is not a fleet_tails --huge JSON")
    cells = {}
    for cell in doc["cells"]:
        try:
            key = (int(cell["services"]), int(cell["hosts"]),
                   str(cell["policy"]),
                   str(cell.get("mix", "mixed")))
            cells[key] = float(cell["events_per_s"])
        except (KeyError, TypeError, ValueError):
            die(f"malformed cell in {path}: {cell}")
    if not cells:
        die(f"{path} has no cells")
    return cells


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline",
                        help="committed BENCH_fleet.json (full run)")
    parser.add_argument("fresh",
                        help="freshly produced --huge [--smoke] JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated events/s drop as a "
                             "fraction (default: 0.20)")
    args = parser.parse_args()

    baseline = read_cells(args.baseline)
    fresh = read_cells(args.fresh)
    common = sorted(set(baseline) & set(fresh))
    if not common:
        die("no comparable (services, hosts, policy, mix) cells "
            "between the two files")

    failures = 0
    for key in common:
        services, hosts, policy, mix = key
        was, now = baseline[key], fresh[key]
        drop = 0.0 if was <= 0 else (was - now) / was
        verdict = "FAIL" if drop > args.threshold else "ok"
        failures += verdict == "FAIL"
        print(f"{verdict:4}  N={services:<6} M={hosts:<2} "
              f"{policy:<9} {mix:<21} baseline {was:>12.0f} ev/s   "
              f"fresh {now:>12.0f} ev/s   drop {drop:+.1%}")

    print(f"\n{len(common)} comparable cell(s), {failures} "
          f"regression(s) beyond {args.threshold:.0%}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
