#!/usr/bin/env python3
"""Check intra-repo markdown links.

Walks the markdown files given on the command line (files or
directories; directories are scanned recursively for *.md), extracts
inline links and images, and verifies that every *relative* target
exists on disk. External links (http/https/mailto) are skipped —
this guards the repo's own docs from rotting, not the internet.
Heading anchors (``file.md#section``) are checked against the target
file's headings.

Exit status: 0 when every link resolves, 1 otherwise (each broken
link is reported on stderr as ``file:line: message``).

Usage:
    python3 tools/check_md_links.py README.md ROADMAP.md docs
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference
# definitions ("[id]: target") are rare in this repo and external
# when present, so inline coverage is the rot that matters.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub-style anchor for a heading line."""
    text = re.sub(r"[`*_~\[\]()!]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def check_file(md: Path) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):
                if slugify(target[1:]) not in headings_of(md):
                    errors.append((md, lineno,
                                   f"broken anchor {target!r}"))
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append((md, lineno,
                               f"broken link {target!r} -> {resolved}"))
                continue
            if anchor and resolved.suffix == ".md":
                if slugify(anchor) not in headings_of(resolved):
                    errors.append(
                        (md, lineno,
                         f"broken anchor {target!r} (no heading "
                         f"#{anchor} in {resolved.name})"))
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"{arg}: no such file or directory", file=sys.stderr)
            return 2

    errors = []
    for md in files:
        errors.extend(check_file(md))
    for md, lineno, message in errors:
        print(f"{md}:{lineno}: {message}", file=sys.stderr)
    checked = len(files)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} "
              f"markdown file(s)", file=sys.stderr)
        return 1
    print(f"OK: {checked} markdown file(s), all intra-repo links "
          f"resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
