#!/usr/bin/env python3
"""Diff the hosts-vs-p95 knee between two fleet-sweep CSVs.

Both inputs are CSVs produced by ``fleetSweepCsv`` (what
``bench_fleet_tails --csv <path>`` writes): one row per sweep cell
with ``scenario,policy,...,hosts,...,adapt_p95_s`` columns. Rows are
grouped by (scenario-without-the-h<M>-field, policy), each group's
rows are ordered by ascending host count, and the marginal knee rule
of bench/fleet_tails.cc is applied: the knee is the smallest M whose
next doubling buys less than ``--threshold`` seconds of p95 per added
host (reported as ``M>max`` when every doubling still pays off).

The report prints one line per group found in both files, with the
knee and the M=min p95 from each file and the shift between them —
so two runs of the bench (before/after a change, legacy vs
work-queue, synchronized vs jittered) can be compared without
re-reading the tables.

Exit status: 0 on success (even when knees differ — the tool
reports, it does not judge), 2 on malformed input or no comparable
groups.
"""

import argparse
import csv
import re
import sys

HOST_FIELD = re.compile(r"-h\d+")


def read_rows(path):
    """Parse one sweep CSV into a list of row dicts."""
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        rows = list(reader)
    required = {"scenario", "policy", "hosts", "adapt_p95_s"}
    if not rows or not required.issubset(rows[0].keys()):
        sys.exit(f"error: {path} is not a fleet-sweep CSV "
                 f"(need columns {sorted(required)})")
    return rows


def group_rows(rows):
    """(scenario-sans-hosts, policy) -> [(hosts, p95)] ascending."""
    groups = {}
    for row in rows:
        variant = HOST_FIELD.sub("", row["scenario"], count=1)
        key = (variant, row["policy"])
        try:
            hosts = int(row["hosts"])
            p95 = float(row["adapt_p95_s"])
        except ValueError:
            sys.exit(f"error: unparsable hosts/p95 in row {row}")
        groups.setdefault(key, []).append((hosts, p95))
    for key, points in groups.items():
        points.sort()
        hosts_seen = [h for h, _ in points]
        if len(set(hosts_seen)) != len(hosts_seen):
            sys.exit(f"error: duplicate host count in group {key} "
                     f"(mixed seeds? filter the CSV first)")
    return groups


def knee_of(points, threshold):
    """The marginal-knee rule; None means 'beyond the sweep'."""
    for (prev_hosts, prev_p95), (hosts, p95) in zip(points,
                                                    points[1:]):
        marginal = (prev_p95 - p95) / (hosts - prev_hosts)
        if marginal < threshold:
            return prev_hosts
    return None


def knee_label(points, threshold):
    knee = knee_of(points, threshold)
    if knee is None:
        return f"M>{points[-1][0]}"
    return f"M={knee}"


def main():
    parser = argparse.ArgumentParser(
        description="Diff the hosts-vs-p95 knee between two "
                    "fleet-sweep CSVs.")
    parser.add_argument("before", help="baseline sweep CSV")
    parser.add_argument("after", help="comparison sweep CSV")
    parser.add_argument("--threshold", type=float, default=60.0,
                        help="marginal knee rule: seconds of p95 per "
                             "added host (default 60)")
    args = parser.parse_args()

    before = group_rows(read_rows(args.before))
    after = group_rows(read_rows(args.after))
    shared_keys = sorted(set(before) & set(after))
    if not shared_keys:
        sys.exit("error: the two CSVs share no (variant, policy) "
                 "groups — nothing to compare")

    width = max(len(f"{variant}/{policy}")
                for variant, policy in shared_keys)
    print(f"knee shift (threshold {args.threshold:g} s/host), "
          f"{args.before} -> {args.after}:")
    header = (f"{'group':<{width}}  {'before':>8} {'after':>8} "
              f"{'shift':>8}  {'p95@minM before->after':>24}")
    print(header)
    for key in shared_keys:
        variant, policy = key
        b_points, a_points = before[key], after[key]
        b_label = knee_label(b_points, args.threshold)
        a_label = knee_label(a_points, args.threshold)
        b_knee = knee_of(b_points, args.threshold)
        a_knee = knee_of(a_points, args.threshold)
        if b_knee is None or a_knee is None:
            shift = "?" if b_label != a_label else "none"
        elif a_knee < b_knee:
            shift = f"-{b_knee - a_knee}"
        elif a_knee > b_knee:
            shift = f"+{a_knee - b_knee}"
        else:
            shift = "none"
        p95s = (f"{b_points[0][1]:.1f}s -> {a_points[0][1]:.1f}s "
                f"@M={b_points[0][0]}")
        print(f"{variant + '/' + policy:<{width}}  {b_label:>8} "
              f"{a_label:>8} {shift:>8}  {p95s:>24}")

    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    for key, where in [(k, args.before) for k in only_before] + \
                      [(k, args.after) for k in only_after]:
        print(f"note: {key[0]}/{key[1]} only in {where}")


if __name__ == "__main__":
    main()
