/**
 * @file
 * dejavu_top — pretty-print a metrics-registry dump.
 *
 * Reads the `name value` kv format that `dejavud --report` prints
 * and benches write via `--metrics-out` (Prometheus-format input
 * also works: `# TYPE` comment lines are skipped and label-free
 * sample lines are kv lines already), sorts by name, and renders an
 * aligned table grouped by the first dotted path component:
 *
 *     ./build/dejavu_top metrics.kv
 *     ./build/dejavud --repository repo.bin --report | ./build/dejavu_top
 *
 * See docs/OBSERVABILITY.md for the metric-name taxonomy.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

int
run(std::istream &in)
{
    std::vector<std::pair<std::string, std::string>> rows;
    std::size_t widest = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos || space == 0)
            continue;
        std::string name = line.substr(0, space);
        std::string value = line.substr(space + 1);
        if (name.find('{') != std::string::npos)
            continue;  // labeled Prometheus series (histogram buckets)
        widest = std::max(widest, name.size());
        rows.emplace_back(std::move(name), std::move(value));
    }
    std::sort(rows.begin(), rows.end());

    std::string group;
    for (const auto &[name, value] : rows) {
        // Group by the first dotted path component; sanitized
        // Prometheus names have no dots, so fall back to the first
        // underscore segment (`serving_samples` -> `serving`).
        std::size_t cut = name.find('.');
        if (cut == std::string::npos)
            cut = name.find('_');
        const std::string head = name.substr(0, cut);
        if (head != group) {
            if (!group.empty())
                std::printf("\n");
            group = head;
        }
        std::printf("%-*s  %s\n", static_cast<int>(widest),
                    name.c_str(), value.c_str());
    }
    if (rows.empty()) {
        std::fprintf(stderr, "dejavu_top: no metrics in input\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 2 ||
        (argc == 2 && std::string(argv[1]) == "--help")) {
        std::fprintf(stderr,
                     "usage: dejavu_top [<kv-or-prometheus-file>]\n"
                     "       (reads stdin when no file is given)\n");
        return argc > 2 ? 1 : 0;
    }
    if (argc == 2) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "dejavu_top: cannot open %s\n",
                         argv[1]);
            return 1;
        }
        return run(in);
    }
    return run(std::cin);
}
