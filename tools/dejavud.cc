/**
 * @file
 * dejavud — the standalone DejaVu allocation daemon (docs/SERVING.md).
 *
 * Serves the signature -> classify -> repository-lookup hot path over
 * a unix-domain socket: clients Hello with their service kind, stream
 * monitor samples and receive allocation Answers within a configurable
 * latency budget (breaches answer full capacity and are counted, never
 * blocked on).
 *
 * The daemon bootstraps by building and learning a small mixed fleet
 * (one member per service kind) — the demo/self-test configuration —
 * then serves either the repository that fleet learned or, with
 * `--repository <csv>`, a previously saved repository file (the
 * restart path: reload, never relearn). Models are always the learned
 * per-kind classifiers; the repository contents are swappable.
 *
 * Flags:
 *   --listen <path>      serve on a unix socket until stdin sees EOF
 *   --repository <csv>   serve this saved repository instead of the
 *                        freshly learned one
 *   --save <csv>         persist the served repository and exit paths
 *   --shards <n>         repository lock stripes (default 8)
 *   --budget-us <n>      per-lookup latency budget in microseconds
 *                        (default 250; 0 = always breach, i.e. every
 *                        answer is the fallback — a drill mode)
 *   --max-sessions <n>   admission-gate capacity (default 65536)
 *   --seed <n>           bootstrap fleet seed (default 42)
 *   --selftest           serve one in-process client per kind and
 *                        verify the answers; exit nonzero on failure
 *   --report             print the metrics registry on exit as sorted
 *                        `name value` lines (the runbook's
 *                        `symptom -> counter` table reads these
 *                        names; latency quantiles appear as
 *                        `_p50_lo_ns`/`_p50_ns` bucket bounds —
 *                        pretty-print with tools/dejavu_top)
 *   --metrics <path>     write the registry in Prometheus text
 *                        exposition format on exit (scrape the file,
 *                        or point a node_exporter textfile collector
 *                        at it — docs/OBSERVABILITY.md)
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "serving/bootstrap.hh"
#include "serving/client.hh"
#include "serving/socket.hh"
#include "sim/cluster.hh"

using namespace dejavu;
using namespace dejavu::serving;

namespace {

/** One in-process round of traffic per kind; true when every client
 *  connected and every sample got a well-formed answer. */
bool
selftest(ServingServer &server, ServingBootstrap &bootstrap)
{
    bool ok = true;
    constexpr int kSamples = 32;
    for (auto &member : bootstrap.stack->members) {
        const ServiceKind kind = member->service->kind();
        ServingClient client(server);
        if (!client.hello(kind, member->cluster->maxAllocation(),
                          "selftest")) {
            std::cout << "  " << serviceKindName(kind)
                      << ": hello REJECTED\n";
            ok = false;
            continue;
        }
        int hits = 0;
        int unknowns = 0;
        const auto samples = bootstrap.collectSamples(kind, kSamples);
        for (const MetricSample &sample : samples) {
            const AnswerMsg answer = client.decide(sample.values);
            if (answer.kind == 0)
                ++hits;
            else
                ++unknowns;
        }
        client.bye();
        std::cout << "  " << serviceKindName(kind) << ": " << hits
                  << " cache hits, " << unknowns
                  << " unknown-workload fallbacks over " << kSamples
                  << " samples\n";
        // A learned kind classifying its own reuse-window traffic
        // must mostly hit; all-unknown means the models and the
        // repository went out of sync.
        ok = ok && hits > 0;
    }
    ok = ok
        && server.metrics().wireErrors.load(std::memory_order_relaxed)
               == 0;
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Info);

    std::string listenPath;
    std::string repositoryPath;
    std::string savePath;
    int shards = 8;
    std::uint64_t budgetUs = 250;
    int maxSessions = 65536;
    std::uint64_t seed = 42;
    bool runSelftest = false;
    bool report = false;
    std::string metricsPath;
    for (int i = 1; i < argc; ++i) {
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal(argv[i], " needs a value");
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--listen") == 0)
            listenPath = value();
        else if (std::strcmp(argv[i], "--repository") == 0)
            repositoryPath = value();
        else if (std::strcmp(argv[i], "--save") == 0)
            savePath = value();
        else if (std::strcmp(argv[i], "--shards") == 0)
            shards = std::stoi(value());
        else if (std::strcmp(argv[i], "--budget-us") == 0)
            budgetUs = std::stoull(value());
        else if (std::strcmp(argv[i], "--max-sessions") == 0)
            maxSessions = std::stoi(value());
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = std::stoull(value());
        else if (std::strcmp(argv[i], "--selftest") == 0)
            runSelftest = true;
        else if (std::strcmp(argv[i], "--report") == 0)
            report = true;
        else if (std::strcmp(argv[i], "--metrics") == 0)
            metricsPath = value();
        else
            fatal("unknown argument: ", argv[i],
                  " (see the flag list in tools/dejavud.cc or "
                  "docs/SERVING.md)");
    }
    if (shards < 1)
        fatal("--shards must be >= 1");

    BootstrapOptions options;
    options.seed = seed;
    options.shards = shards;
    options.budgetNanos = budgetUs * 1000;
    options.maxSessions = maxSessions;
    options.learnThreads = std::max(
        1u, std::min(8u, std::thread::hardware_concurrency()));

    inform("dejavud: learning bootstrap fleet (seed ", seed, ", ",
         options.learnThreads, " threads)");
    auto bootstrap = makeServingBootstrap(options);

    // --repository swaps the served contents for a saved file (the
    // operator restart/reload path); the learned models stay.
    std::unique_ptr<SharedRepository> repoOverride;
    std::unique_ptr<ServingServer> serverOverride;
    if (!repositoryPath.empty()) {
        std::ifstream in(repositoryPath);
        if (!in)
            fatal("cannot read repository ", repositoryPath);
        repoOverride = std::make_unique<SharedRepository>(
            SharedRepository::load(in, SharedRepository::Mode::Shared,
                                   ServiceKind::Generic, shards));
        ServingServer::Config config;
        config.budgetNanos = options.budgetNanos;
        config.maxSessions = maxSessions;
        serverOverride = std::make_unique<ServingServer>(
            *repoOverride, config);
        for (auto &member : bootstrap->stack->members)
            serverOverride->registerModel(
                member->service->kind(),
                member->controller->servingModel());
    }
    ServingServer &server =
        serverOverride ? *serverOverride : *bootstrap->server;
    const SharedRepository &repo = server.repository();
    inform("dejavud: serving ", repo.entries(), " repository entries "
         "across ", repo.shards(), " shard(s), budget ", budgetUs,
         " us");

    if (!savePath.empty()) {
        std::ofstream out(savePath);
        if (!out)
            fatal("cannot write repository to ", savePath);
        repo.save(out);
        inform("dejavud: repository saved to ", savePath);
    }

    int exitCode = 0;
    if (runSelftest) {
        std::cout << "dejavud selftest:\n";
        const bool ok = selftest(server, *bootstrap);
        std::cout << "selftest: " << (ok ? "PASS" : "FAIL") << "\n";
        exitCode = ok ? 0 : 1;
    }

    if (!listenPath.empty() && exitCode == 0) {
        SocketServer socket(server, listenPath);
        if (!socket.start())
            return 1;
        inform("dejavud: listening on ", listenPath,
             " — EOF on stdin shuts down");
        // Block until the controlling pipe closes (condvar-free here:
        // the read itself is the wait).
        while (std::cin.get() != std::char_traits<char>::eof()) {
        }
        inform("dejavud: shutting down");
        socket.stop();
    }

    if (report)
        std::cout << server.metrics().toString();
    if (!metricsPath.empty()) {
        std::ofstream out(metricsPath);
        if (!out)
            fatal("cannot write metrics to ", metricsPath);
        server.metrics().registry.writePrometheus(out);
        inform("dejavud: Prometheus metrics written to ",
               metricsPath);
    }
    return exitCode;
}
