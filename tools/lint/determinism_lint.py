#!/usr/bin/env python3
"""Determinism linter for the DejaVu C++ tree.

Every PR stakes its correctness on one invariant: sweep digests are
bit-identical at any thread count. A single stray ``rand()``,
wall-clock read, or unordered-container iteration feeding a digest
would only surface as a flaky parity failure at fleet scale — so this
linter bans nondeterminism *sources* statically:

``rng``
    ``rand()`` / ``srand()`` / ``std::random_device`` /
    ``std::mt19937`` and friends anywhere outside ``common/random.*``
    — all stochastic behaviour flows through the seeded ``Rng``.
``wall-clock``
    ``time()``, ``clock()``, ``gettimeofday``, ``clock_gettime``,
    ``getrusage`` and the ``<chrono>`` clocks outside
    ``common/stats.*`` and ``obs/wall_clock.*`` — simulated time
    comes from the EventQueue, and the only sanctioned host-side
    measurements (peak RSS, bench wall time, wall-domain trace
    lanes) live in the stats helpers and the obs wall-clock shim.
``sleep``
    ``std::this_thread`` (sleeps / yields) — timing-dependent
    scheduling has no place in a deterministic simulator.
``raw-new``
    raw ``new`` expressions — ownership goes through
    ``std::make_unique`` / containers; a raw ``new`` is either a leak
    (ASan's ``detect_leaks`` gate) or a double-delete waiting.
``unordered-iteration``
    range-for / ``.begin()`` iteration over ``std::unordered_map`` /
    ``std::unordered_set`` inside files that serialize state (write
    digests, CSVs, ``save()`` or ``toString()`` output). Hash-table
    order is not part of any contract; serializers must go through
    sorted-key helpers.

The scanner is tokenizer-aware, not a grep: comments, string and
character literals (including raw strings) are stripped before any
rule runs, so ``"rand()"`` in a log message never fires.

Suppression: append ``// lint-allow(<rule>): <reason>`` to the
offending line, or place it on a comment-only line immediately above.
The reason is mandatory — a pragma without one is itself an error.

Self-test: ``--self-test`` lints the seeded-violation corpus under
``tools/lint/tests/`` and verifies the findings match the
``// expect(<rule>)`` markers exactly — every seeded violation must
be caught, and nothing else may fire.

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage or
I/O error.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h")

# Files (matched by path suffix, "/"-normalized) that are allowed to
# use what a rule bans — the single sanctioned home of that construct.
RULES = {
    "rng": {
        "patterns": [
            r"\brand\s*\(",
            r"\bsrand\s*\(",
            r"\bstd\s*::\s*random_device\b",
            r"\bstd\s*::\s*mt19937(?:_64)?\b",
            r"\bstd\s*::\s*default_random_engine\b",
            r"\bstd\s*::\s*minstd_rand0?\b",
            r"\brandom_shuffle\b",
        ],
        "allowed": ["common/random.hh", "common/random.cc"],
        "message": "unseeded/system RNG; use the seeded dejavu::Rng "
                   "(common/random.hh)",
    },
    "wall-clock": {
        "patterns": [
            r"\btime\s*\(",
            r"\bclock\s*\(",
            r"\bgettimeofday\s*\(",
            r"\bclock_gettime\s*\(",
            r"\bgetrusage\s*\(",
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
        ],
        "allowed": ["common/stats.hh", "common/stats.cc",
                    "obs/wall_clock.hh", "obs/wall_clock.cc"],
        "message": "wall-clock read; simulated time comes from the "
                   "EventQueue, host-side measurement belongs in "
                   "common/stats.* or obs/wall_clock.*",
    },
    "sleep": {
        "patterns": [r"\bstd\s*::\s*this_thread\b"],
        "allowed": [],
        "message": "std::this_thread sleep/yield; deterministic code "
                   "must not depend on host scheduling",
    },
    "raw-new": {
        "patterns": [r"\bnew\b"],
        "allowed": [],
        "message": "raw new expression; use std::make_unique or a "
                   "container",
    },
    "unordered-iteration": {
        "patterns": [],  # handled by the declaration-tracking pass
        "allowed": [],
        "message": "iteration over an unordered container in a "
                   "serializing file; hash order is not a contract — "
                   "go through a sorted-key helper",
    },
}

# A file "serializes" when it writes digests, CSVs, save() output or
# toString() renderings — the surfaces sweep digests are built from.
SERIALIZER_MARKERS = re.compile(
    r"\b(?:save|toString)\s*\(|[Cc]sv|[Dd]igest")

PRAGMA_RE = re.compile(r"lint-allow\(([\w-]+)\)(:?)")
EXPECT_RE = re.compile(r"expect\(([\w-]+)\)")


class LintError(Exception):
    """Fatal usage/configuration problem (exit 2)."""


def strip_code(text):
    """Blank comments and string/char literals, preserving layout.

    Returns (code, comments) where ``code`` is ``text`` with every
    comment and literal body replaced by spaces (newlines kept, so
    line/column arithmetic holds) and ``comments`` is a list of
    (start_line, is_own_line, comment_text) tuples. 1-based lines.
    """
    out = []
    comments = []
    i, n = 0, len(text)
    line = 1
    line_had_code = False

    def blank(ch):
        return ch if ch == "\n" else " "

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            start_line, own_line = line, not line_had_code
            j = i
            while j < n and text[j] != "\n":
                j += 1
            comments.append((start_line, own_line, text[i:j]))
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            start_line, own_line = line, not line_had_code
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comments.append((start_line, own_line, text[i:j]))
            for k in range(i, j):
                out.append(blank(text[k]))
                if text[k] == "\n":
                    line += 1
            i = j
        elif ch == "R" and nxt == '"':
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if not m:
                out.append(ch)
                line_had_code = True
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n if j < 0 else j + len(close)
            for k in range(i, j):
                out.append(blank(text[k]))
                if text[k] == "\n":
                    line += 1
            line_had_code = True
            i = j
        elif ch == '"' or ch == "'":
            quote = ch
            out.append(" ")
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            for k in range(i + 1, j):
                out.append(blank(text[k]))
                if text[k] == "\n":
                    line += 1
            line_had_code = True
            i = j
        else:
            out.append(ch)
            if ch == "\n":
                line += 1
                line_had_code = False
            elif not ch.isspace():
                line_had_code = True
            i += 1
    return "".join(out), comments


def comment_markers(comments, regex, path):
    """Map marker occurrences in comments to the code lines they
    govern: the comment's own line, or — for a comment-only line —
    the line immediately below the comment."""
    markers = {}
    for start_line, own_line, body in comments:
        for m in regex.finditer(body):
            if regex is PRAGMA_RE:
                tail = body[m.end():].strip()
                if m.group(2) != ":" or not tail:
                    raise LintError(
                        f"{path}:{start_line}: lint-allow("
                        f"{m.group(1)}) needs a ': <reason>'")
            target = start_line
            if own_line:
                target = start_line + body.count("\n") + 1
            markers.setdefault(target, set()).add(m.group(1))
    return markers


def skip_angles(code, i):
    """Given code[i] == '<', return the index just past the matching
    '>' (best effort; stops at ';' or '{' to bound damage)."""
    depth = 0
    while i < len(code):
        ch = code[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif ch in ";{":
            return i
        i += 1
    return i


def tracked_unordered_names(code):
    """Names (variables, members, type aliases) declared with an
    unordered container type in ``code``. Heuristic and intentionally
    over-approximate: tracking a name that is never iterated costs
    nothing."""
    aliases = set()
    names = set()
    decl_re = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*")
    for m in decl_re.finditer(code):
        i = m.end()
        if i < len(code) and code[i] == "<":
            i = skip_angles(code, i)
        tail = code[i:]
        # `using Alias = std::unordered_map<...>;` names an alias.
        before = code[:m.start()]
        alias_m = re.search(r"(?:using|typedef)\s+(\w+)\s*=\s*$",
                            before)
        if alias_m:
            aliases.add(alias_m.group(1))
            continue
        var_m = re.match(r"\s*[&*]?\s*(\w+)\s*[;({=,)]", tail)
        if var_m:
            names.add(var_m.group(1))
    for alias in aliases:
        # `Alias name;`, `const Alias &ref = ...`, `Alias name = ...`
        for m in re.finditer(
                r"\b" + re.escape(alias) + r"\s*[&*]?\s*(\w+)\s*[;=({]",
                code):
            names.add(m.group(1))
    names.discard("")
    return names, aliases


RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*(?:\([^()]*\)[^;()]*)*)"
                          r":([^;)]*)\)")
BEGIN_RE = re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(")


def unordered_iteration_findings(code, sibling_code):
    """Line numbers (with offending name) of unordered iteration."""
    harvest = code if sibling_code is None else code + "\n" + sibling_code
    names, _aliases = tracked_unordered_names(harvest)
    findings = []
    if not names:
        return findings
    word = re.compile(r"\b(" + "|".join(
        re.escape(n) for n in sorted(names)) + r")\b")
    for m in RANGE_FOR_RE.finditer(code):
        hit = word.search(m.group(2))
        if hit:
            line = code.count("\n", 0, m.start()) + 1
            findings.append((line, hit.group(1)))
    for m in BEGIN_RE.finditer(code):
        if m.group(1) in names:
            line = code.count("\n", 0, m.start()) + 1
            findings.append((line, m.group(1)))
    return findings


def is_allowed_path(path, allowed):
    norm = path.replace(os.sep, "/")
    return any(norm.endswith(suffix) for suffix in allowed)


def sibling_header(path):
    base, ext = os.path.splitext(path)
    if ext not in (".cc", ".cpp"):
        return None
    for hext in (".hh", ".hpp", ".h"):
        if os.path.exists(base + hext):
            return base + hext
    return None


def lint_file(path, text=None):
    """Lint one file; returns a list of (line, rule, detail)."""
    if text is None:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as err:
            raise LintError(f"cannot read {path}: {err}")
    code, comments = strip_code(text)
    allows = comment_markers(comments, PRAGMA_RE, path)
    findings = []

    def allowed(line, rule):
        return rule in allows.get(line, ())

    for rule_id, rule in RULES.items():
        if is_allowed_path(path, rule["allowed"]):
            continue
        for pattern in rule["patterns"]:
            for m in re.finditer(pattern, code):
                line = code.count("\n", 0, m.start()) + 1
                if not allowed(line, rule_id):
                    findings.append((line, rule_id, rule["message"]))

    if SERIALIZER_MARKERS.search(code):
        sibling = sibling_header(path)
        sibling_code = None
        if sibling:
            with open(sibling, encoding="utf-8") as fh:
                sibling_code, _ = strip_code(fh.read())
        for line, name in unordered_iteration_findings(
                code, sibling_code):
            if not allowed(line, "unordered-iteration"):
                findings.append(
                    (line, "unordered-iteration",
                     f"'{name}' is an unordered container; " +
                     RULES["unordered-iteration"]["message"]))
    return sorted(set(findings))


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(files))


def run_lint(paths):
    failures = 0
    for path in collect_files(paths):
        for line, rule, detail in lint_file(path):
            failures += 1
            print(f"{path}:{line}: [{rule}] {detail} "
                  f"(suppress: // lint-allow({rule}): <reason>)")
    if failures:
        print(f"\n{failures} determinism-lint finding(s)")
        return 1
    return 0


def run_self_test(corpus_dir):
    """Lint the corpus; findings must equal the expect() markers."""
    files = collect_files([corpus_dir])
    if not files:
        raise LintError(f"self-test corpus is empty: {corpus_dir}")
    mismatches = 0
    checked = 0
    for path in files:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        _code, comments = strip_code(text)
        expected = comment_markers(comments, EXPECT_RE, path)
        expect_set = {(line, rule)
                      for line, rules in expected.items()
                      for rule in rules}
        found_set = {(line, rule)
                     for line, rule, _ in lint_file(path, text)}
        checked += len(expect_set)
        for line, rule in sorted(expect_set - found_set):
            mismatches += 1
            print(f"MISSED  {path}:{line}: seeded [{rule}] violation "
                  f"not caught")
        for line, rule in sorted(found_set - expect_set):
            mismatches += 1
            print(f"SPURIOUS {path}:{line}: unexpected [{rule}] "
                  f"finding")
    print(f"self-test: {len(files)} corpus file(s), {checked} seeded "
          f"violation(s), {mismatches} mismatch(es)")
    return 1 if mismatches else 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(e.g. src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded-violation corpus and "
                             "verify every violation is caught")
    args = parser.parse_args()

    try:
        if args.self_test:
            corpus = os.path.join(os.path.dirname(
                os.path.abspath(__file__)), "tests")
            return run_self_test(corpus)
        if not args.paths:
            parser.error("give at least one path to lint "
                         "(or --self-test)")
        return run_lint(args.paths)
    except LintError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
