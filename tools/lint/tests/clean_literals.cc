// Banned tokens inside comments and literals must never fire: the
// linter is tokenizer-aware, not a grep. No expect() markers here —
// any finding in this file is a self-test failure.
//
// In commentary: rand(), srand(1), std::random_device, time(nullptr),
// std::this_thread::sleep_for, new int[3], steady_clock.

#include <string>

/* Block comments too: system_clock::now() and a raw new expression. */

std::string
cleanLiterals()
{
    const std::string s1 = "rand() time(0) new std::this_thread";
    const std::string s2 = "std::mt19937 gen; steady_clock tick";
    const char escaped[] = "prefix \" rand() \" suffix";
    const char quote = '"';
    const std::string raw = R"(new time(nullptr) rand() "quoted")";
    // Identifiers merely *containing* banned words are fine:
    const int renewal = 1;     // not a raw `new`
    const int timer = 2;       // `timer(` is not `time(`
    (void)quote;
    return s1 + s2 + escaped + raw +
        std::to_string(renewal + timer);
}

int
adaptationTime(int t)
{
    // A call named ...Time( must not match the wall-clock rule.
    return adaptationTime(t - 1) + t;
}
