// Path-allowlist check: files whose path ends in common/random.* are
// the sanctioned home of RNG machinery, so std::mt19937 and
// std::random_device are legal here. No expect() markers.

#include <random>

unsigned
sanctionedEntropy()
{
    std::random_device device;
    std::mt19937 generator(device());
    return generator();
}
