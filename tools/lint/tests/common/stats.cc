// Path-allowlist check: files whose path ends in common/stats.* are
// the sanctioned home of host-side measurement (peak RSS, bench wall
// time), so clock reads are legal here. No expect() markers.

#include <chrono>
#include <sys/resource.h>

long
sanctionedMeasurement()
{
    struct rusage usage;
    getrusage(RUSAGE_SELF, &usage);
    const auto tick = std::chrono::steady_clock::now();
    return usage.ru_maxrss + tick.time_since_epoch().count();
}
