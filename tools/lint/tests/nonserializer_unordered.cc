// Unordered iteration is only banned in files that serialize state
// (digests/CSVs/save()/toString()). This file writes none of those,
// so its internal order-insensitive accumulation is fine: no
// expect() markers.

#include <unordered_map>

int
totalWeight(const std::unordered_map<int, int> &weights)
{
    std::unordered_map<int, int> filtered = weights;
    int total = 0;
    for (const auto &[_, weight] : filtered)
        total += weight;
    return total;
}
