// Path-allowlist check: files whose path ends in obs/wall_clock.*
// are the sanctioned clock shim for wall-domain trace lanes, so
// clock reads are legal here. No expect() markers.

#include <chrono>

long
sanctionedWallRead()
{
    const auto tick = std::chrono::steady_clock::now();
    return tick.time_since_epoch().count();
}
