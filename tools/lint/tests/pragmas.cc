// lint-allow pragma placement: same line, or a comment-only line
// immediately above. A pragma never spills past its target line —
// the trailing unsuppressed violation must still fire.

#include <cstdlib>
#include <ctime>

int
sanctionedExceptions()
{
    const int r = rand();  // lint-allow(rng): exercising the same-line pragma form
    // lint-allow(wall-clock): exercising the line-above pragma form
    const long t = time(nullptr);
    // lint-allow(raw-new): reason pragmas only cover their own rule
    const long u = time(nullptr);  // expect(wall-clock)
    return r + static_cast<int>(t + u);
}

int *
stillCaught()
{
    return new int(1);  // expect(raw-new)
}
