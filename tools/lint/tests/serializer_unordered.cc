// A serializing file (it defines save()/toCsv()): every direct
// iteration over an unordered container must be flagged; the sorted
// helper pattern with a reasoned pragma must pass.

#include <algorithm>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using BadgeSet = std::unordered_set<int>;

struct Ledger
{
    std::unordered_map<std::string, int> balances;
    BadgeSet badges;

    std::vector<std::string> sortedNames() const
    {
        std::vector<std::string> names;
        names.reserve(balances.size());
        // lint-allow(unordered-iteration): collected then sorted below
        for (const auto &[name, _] : balances)
            names.push_back(name);
        std::sort(names.begin(), names.end());
        return names;
    }

    void save(std::ostream &out) const
    {
        for (const auto &[name, value] : balances)  // expect(unordered-iteration)
            out << name << ',' << value << '\n';
        for (auto it = badges.begin(); it != badges.end(); ++it)  // expect(unordered-iteration)
            out << *it << '\n';
        for (const std::string &name : sortedNames())
            out << name << '\n';
    }

    std::string toCsv() const
    {
        std::string out;
        BadgeSet seen = badges;
        for (int badge : seen)  // expect(unordered-iteration)
            out += std::to_string(badge) + "\n";
        return out;
    }
};
