// Implementation of the pair; the member and the alias are declared
// in sibling.hh only.

#include "sibling.hh"

#include <ostream>

void
Catalog::save(std::ostream &out) const
{
    for (const auto &[name, id] : _index)  // expect(unordered-iteration)
        out << name << ',' << id << '\n';
    const Index scratch = _index;
    for (const auto &[name, id] : scratch)  // expect(unordered-iteration)
        out << id << ',' << name << '\n';
}
