// Declarations live here; the paired sibling.cc iterates them. The
// linter harvests a .cc's sibling header so member declarations and
// type aliases are visible when linting the implementation file.

#include <string>
#include <unordered_map>

struct Catalog
{
    using Index = std::unordered_map<std::string, int>;

    Index _index;

    void save(std::ostream &out) const;
};
