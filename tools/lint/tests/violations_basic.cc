// Seeded violations for every regex-driven rule. Each offending line
// carries an expect(<rule>) marker; --self-test fails unless the
// linter reports exactly these.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

int
seededRngViolations()
{
    std::random_device entropy;                       // expect(rng)
    std::mt19937 gen(entropy());                      // expect(rng)
    srand(42);                                        // expect(rng)
    return rand() + static_cast<int>(gen());          // expect(rng)
}

long
seededClockViolations()
{
    const auto wall = std::chrono::system_clock::now();  // expect(wall-clock)
    const auto mono = std::chrono::steady_clock::now();  // expect(wall-clock)
    const std::time_t stamp = time(nullptr);             // expect(wall-clock)
    return stamp + wall.time_since_epoch().count()
        + mono.time_since_epoch().count();
}

void
seededSleepViolation()
{
    std::this_thread::sleep_for(std::chrono::seconds(1));  // expect(sleep)
}

int *
seededRawNewViolations()
{
    int *leak = new int(7);  // expect(raw-new)
    // A comment-only line above the violation must not shield it.
    return new int(*leak);   // expect(raw-new)
}
