#!/usr/bin/env python3
"""Tests for tools/check_bench_regression.py, driven end-to-end
through a subprocess so the documented exit-status contract is what
is pinned: 0 = every comparable cell passes, 1 = regression,
2 = malformed input or no comparable cells.

Stdlib-only (unittest, no pytest) so it runs in the bare CI image;
registered with ctest by the top-level CMakeLists.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOL = pathlib.Path(__file__).resolve().parents[1] / \
    "check_bench_regression.py"


def bench_doc(cells):
    """A minimal fleet_tails --huge JSON with the given cells, each a
    (services, hosts, policy, events_per_s) tuple or a
    (services, hosts, policy, events_per_s, mix) tuple."""
    rows = []
    for cell in cells:
        s, h, p, ev = cell[:4]
        row = {"services": s, "hosts": h, "policy": p,
               "events_per_s": ev, "peak_rss_bytes": 1 << 20}
        if len(cell) > 4:
            row["mix"] = cell[4]
        rows.append(row)
    return {"bench": "fleet_tails_huge", "cells": rows}


def serving_doc(cells):
    """A minimal bench_serving JSON with the given cells, each a
    (sessions, clients, shards, mode, lookups_per_s, p99_ns)
    tuple."""
    rows = [{"sessions": s, "clients": c, "shards": sh, "mode": m,
             "lookups_per_s": rate, "p99_ns": p99,
             "p50_ns": p99 / 2, "ops": 50_000,
             "peak_rss_bytes": 1 << 20}
            for s, c, sh, m, rate, p99 in cells]
    return {"bench": "serving", "smoke": False,
            "budget_ns": 250_000, "cells": rows}


class CheckBenchRegressionTest(unittest.TestCase):

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def path_for(self, name, text):
        p = pathlib.Path(self._dir.name) / name
        p.write_text(text, encoding="utf-8")
        return str(p)

    def json_for(self, name, cells):
        return self.path_for(name, json.dumps(bench_doc(cells)))

    def run_tool(self, *argv):
        return subprocess.run(
            [sys.executable, str(TOOL), *argv],
            capture_output=True, text=True)

    def test_matching_cells_pass(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 990_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("ok", result.stdout)

    def test_regression_beyond_threshold_fails(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 500_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_exactly_threshold_drop_passes(self):
        # The gate is strict (drop > threshold): a drop of exactly
        # 20% against the default 0.20 threshold is tolerated.
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 800_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertNotIn("FAIL", result.stdout)

    def test_just_past_threshold_fails(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 799_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)

    def test_custom_threshold(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 950_000.0)])
        self.assertEqual(
            self.run_tool(base, fresh, "--threshold", "0.01")
            .returncode, 1)
        self.assertEqual(
            self.run_tool(base, fresh, "--threshold", "0.10")
            .returncode, 0)

    def test_only_shared_cells_compared(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0),
                              (10_000, 8, "sjf", 4_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 990_000.0),
                               (500, 1, "fifo", 1.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 comparable cell(s)", result.stdout)

    def test_no_shared_cells_is_an_input_error(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(500, 1, "fifo", 1_000_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("no comparable", result.stderr)

    def test_malformed_json_exits_2(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        broken = self.path_for("broken.json", "{not json")
        result = self.run_tool(base, broken)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("cannot read", result.stderr)

    def test_missing_file_exits_2(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        result = self.run_tool(base, str(
            pathlib.Path(self._dir.name) / "nope.json"))
        self.assertEqual(result.returncode, 2, result.stderr)

    def test_wrong_bench_kind_exits_2(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        other = self.path_for(
            "other.json",
            json.dumps({"bench": "something_else", "cells": []}))
        result = self.run_tool(base, other)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("not a fleet_tails", result.stderr)

    def test_cell_missing_field_exits_2(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        doc = bench_doc([(1000, 2, "sjf", 1_000_000.0)])
        del doc["cells"][0]["events_per_s"]
        broken = self.path_for("cell.json", json.dumps(doc))
        result = self.run_tool(base, broken)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("malformed cell", result.stderr)

    def test_empty_cells_exits_2(self):
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        empty = self.path_for(
            "empty.json",
            json.dumps({"bench": "fleet_tails_huge", "cells": []}))
        result = self.run_tool(base, empty)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("has no cells", result.stderr)

    def test_mix_field_disambiguates_cells(self):
        # A conformance cell shares (services, hosts, policy) with a
        # scale-plan cell; the mix tag must keep the two from being
        # compared against each other.
        base = self.json_for(
            "base.json",
            [(100, 1, "fifo", 1_000_000.0),
             (100, 1, "fifo", 100_000.0, "ycsb+daemons+hostloss")])
        fresh = self.json_for(
            "fresh.json",
            [(100, 1, "fifo", 990_000.0),
             (100, 1, "fifo", 99_000.0, "ycsb+daemons+hostloss")])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("2 comparable cell(s)", result.stdout)

    def test_mix_regression_caught_despite_healthy_mixed_twin(self):
        base = self.json_for(
            "base.json",
            [(100, 1, "fifo", 1_000_000.0),
             (100, 1, "fifo", 100_000.0, "ycsb+daemons+hostloss")])
        fresh = self.json_for(
            "fresh.json",
            [(100, 1, "fifo", 1_000_000.0),
             (100, 1, "fifo", 50_000.0, "ycsb+daemons+hostloss")])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("ycsb+daemons+hostloss", result.stdout)

    def test_missing_mix_defaults_to_mixed(self):
        # Baselines written before the mix field existed must stay
        # comparable against fresh files that spell it out.
        base = self.json_for("base.json",
                             [(1000, 2, "sjf", 1_000_000.0)])
        fresh = self.json_for("fresh.json",
                              [(1000, 2, "sjf", 990_000.0, "mixed")])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 comparable cell(s)", result.stdout)

    def test_zero_baseline_never_divides(self):
        base = self.json_for("base.json", [(1000, 2, "sjf", 0.0)])
        fresh = self.json_for("fresh.json", [(1000, 2, "sjf", 0.0)])
        self.assertEqual(self.run_tool(base, fresh).returncode, 0)

    # ---- the serving dialect (bench_serving JSONs) ----

    def serving_for(self, name, cells):
        return self.path_for(name, json.dumps(serving_doc(cells)))

    def test_serving_matching_cells_pass(self):
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0),
             (100, 4, 1, "bus", 200_000.0, 50_000.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 1, 1, "direct", 900_000.0, 2_500.0),
             (100, 4, 1, "bus", 190_000.0, 60_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("2 comparable cell(s)", result.stdout)

    def test_serving_throughput_cliff_fails(self):
        # The serving default threshold is 0.50: a 60% drop is the
        # algorithmic-cliff signature the gate exists for.
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 1, 1, "direct", 400_000.0, 2_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("FAIL", result.stdout)

    def test_serving_p99_blowup_fails_despite_healthy_rate(self):
        # p99 rising beyond 4x (default --p99-threshold 3.0) fails
        # even when throughput held: a serialized tail is exactly the
        # regression the latency budget guards against.
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 1, 1, "direct", 1_000_000.0, 9_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("p99", result.stdout)

    def test_serving_p99_threshold_flag(self):
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 1, 1, "direct", 1_000_000.0, 5_000.0)])
        self.assertEqual(
            self.run_tool(base, fresh).returncode, 0)
        self.assertEqual(
            self.run_tool(base, fresh, "--p99-threshold", "1.0")
            .returncode, 1)

    def test_serving_mode_disambiguates_cells(self):
        # A bus cell shares (sessions, clients, shards) with a direct
        # cell; the mode tag must keep the two apart.
        base = self.serving_for(
            "base.json",
            [(100, 4, 1, "direct", 1_000_000.0, 2_000.0),
             (100, 4, 1, "bus", 200_000.0, 50_000.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 4, 1, "direct", 1_000_000.0, 2_000.0),
             (100, 4, 1, "bus", 50_000.0, 50_000.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("bus", result.stdout)

    def test_serving_smoke_subset_compares_shared_cells_only(self):
        # The committed baseline carries 10k-session cells the smoke
        # plan omits; only the shared cells are compared.
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0),
             (10_000, 4, 8, "direct", 900_000.0, 2_500.0)])
        fresh = self.serving_for(
            "fresh.json",
            [(100, 1, 1, "direct", 950_000.0, 2_100.0)])
        result = self.run_tool(base, fresh)
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("1 comparable cell(s)", result.stdout)

    def test_dialect_mismatch_exits_2(self):
        fleet = self.json_for("fleet.json",
                              [(1000, 2, "sjf", 1_000_000.0)])
        serving = self.serving_for(
            "serving.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        result = self.run_tool(fleet, serving)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("dialect mismatch", result.stderr)

    def test_serving_cell_missing_p99_exits_2(self):
        base = self.serving_for(
            "base.json",
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        doc = serving_doc(
            [(100, 1, 1, "direct", 1_000_000.0, 2_000.0)])
        del doc["cells"][0]["p99_ns"]
        broken = self.path_for("cell.json", json.dumps(doc))
        result = self.run_tool(base, broken)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("malformed cell", result.stderr)


if __name__ == "__main__":
    unittest.main()
